"""Asyncio sweep coordination: concurrent sweeps, streaming task events.

:class:`SweepCoordinator` is the service's engine room.  It drives the
pipeline's :class:`~repro.pipeline.runner.SweepSession` task dispatch off
an asyncio event loop instead of the blocking loop in
:meth:`~repro.pipeline.runner.ParallelSweepRunner.run` — the *same*
``task_args → execute_task → record`` code path, so everything the batch
engine guarantees (bit-identical results for any execution order, durable
journaling, warm-first planning) holds verbatim for the service.

What the event loop adds:

* **concurrent sweeps** — each :meth:`submit` schedules an independent
  job; tasks from all live jobs interleave on one shared executor.
  Same-spec submissions are serialised per journal digest (two live
  writers of one journal are forbidden by the store's advisory lock;
  queueing beats failing);
* **one shared calibration cache** — with the default thread executor,
  every task of every sweep runs against a single
  :class:`~repro.store.calcache.PersistentCalibrationCache` through
  per-task :class:`_SharedCacheView`\\ s: entries (and the disk tier) are
  shared across sweeps, while hit/miss accounting stays per task so each
  :class:`~repro.pipeline.runner.TaskOutcome` reports exactly the work it
  saved.  Under ``use_processes=True`` sharing happens through the store's
  disk tier instead (caches do not pickle);
* **streaming** — the moment a task outcome lands in the journal it is
  published to every watcher as the journal-entry dict
  (:func:`~repro.store.journal.task_entry`).  :meth:`watch` replays the
  rows a subscriber missed and then streams new ones; delivery is
  exactly-once per watcher by construction (a monotone cursor over an
  append-only event list — pinned in ``tests/test_service.py``).
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import AsyncIterator, Dict, List, Optional

from repro.pipeline.cache import CacheKey, CalibrationCache, CalibrationRecord
from repro.pipeline.runner import (
    ParallelSweepRunner,
    StoreLike,
    SweepResult,
    execute_task,
)
from repro.pipeline.spec import SweepSpec
from repro.store.artifacts import ArtifactStore
from repro.store.calcache import PersistentCalibrationCache
from repro.store.journal import journal_spec_digest, task_entry

__all__ = ["SweepCoordinator", "SweepJob"]

#: Job lifecycle. ``queued`` → ``running`` → one of the terminal three.
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")


def _close_abandoned_session(future) -> None:
    """Done-callback releasing a session whose job was cancelled while
    ``open_session`` was still running on the executor thread."""
    if future.cancelled() or future.exception() is not None:
        return  # open failed: open_session released the lock itself
    future.result().close()


class _SharedCacheView(CalibrationCache):
    """A per-task cache whose entries are shared with a coordinator-wide
    :class:`PersistentCalibrationCache`.

    Keeps the engine's accounting invariant — each task outcome reports
    its *own* hits/misses/saved work — while letting concurrent sweeps
    reuse each other's calibrations the instant they are measured.  All
    shared-cache access goes through :meth:`CalibrationCache.peek` /
    ``store`` under one lock, so thread-executor tasks cannot interleave
    a promotion mid-write.
    """

    def __init__(self, shared: PersistentCalibrationCache, lock: threading.Lock):
        super().__init__()
        self._shared = shared
        self._lock = lock

    def lookup(self, key: CacheKey) -> Optional[CalibrationRecord]:
        record = super().lookup(key)  # own memory tier (counts the hit)
        if record is not None:
            return record
        with self._lock:
            record = self._shared.peek(key)  # stat-free: the hit is ours
        if record is None:
            return None
        self._entries[key] = record
        self._stats.hits += 1
        self._stats.saved_shots += record.shots_spent
        self._stats.saved_circuits += record.circuits_executed
        return record

    def store(
        self, key: CacheKey, state: dict, shots_spent: int, circuits_executed: int
    ) -> None:
        super().store(key, state, shots_spent, circuits_executed)  # own miss
        with self._lock:
            # Write-through to the shared memory tier and (via the
            # persistent cache) the artifact store.  The shared stats are
            # never reported anywhere, so its own miss count is inert.
            self._shared.store(key, state, shots_spent, circuits_executed)


class SweepJob:
    """One submitted sweep's live state: events, status, result."""

    def __init__(self, sweep_id: str, spec: SweepSpec, resume: bool) -> None:
        self.sweep_id = sweep_id
        self.spec = spec
        self.resume = resume
        self.state = "queued"
        self.total = spec.num_tasks
        self.plan_counts: Optional[Dict[str, int]] = None
        self.error = ""
        self.result: Optional[SweepResult] = None
        #: Journal-entry dicts in completion order (replayed rows first).
        #: Append-only — watcher cursors rely on it.
        self.events: List[dict] = []
        self._cond = asyncio.Condition()
        self._task: Optional[asyncio.Task] = None

    @property
    def done(self) -> int:
        return len(self.events)

    def status(self) -> dict:
        """JSON-ready snapshot (what the wire protocol's ``status`` returns)."""
        return {
            "sweep_id": self.sweep_id,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "plan": self.plan_counts,
            "error": self.error,
        }


class SweepCoordinator:
    """Runs sweeps for many clients over one store, streaming outcomes.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.artifacts.ArtifactStore` (or its
        root directory) every sweep journals into and calibrates from.
    workers:
        Concurrent task executions across *all* live sweeps.
    use_processes:
        ``False`` (default) executes tasks on a thread pool inside this
        process — cheap start-up, one shared in-memory calibration tier.
        ``True`` uses a process pool: full CPU parallelism for cold
        grids, calibration sharing through the store's disk tier.
    max_finished_jobs:
        Terminal (done/failed/cancelled) jobs kept queryable, oldest
        evicted first.  A long-running server would otherwise retain
        every submission's full event list and result forever; live
        watchers of an evicted job finish unharmed (they hold the job
        object), but ``status``/``results`` for its id then report
        unknown — re-submit the spec instead (warm, so nearly free).
    """

    def __init__(
        self,
        store: StoreLike,
        workers: int = 1,
        use_processes: bool = False,
        max_finished_jobs: int = 64,
    ) -> None:
        self.store = (
            store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        )
        self.workers = max(1, int(workers))
        self.use_processes = bool(use_processes)
        if self.use_processes and not self.store.backend.cross_process:
            # A pool worker reopening mem:// (or an injected-client s3://)
            # would see a different, empty store — warm reuse and the
            # shared calibration tier would silently vanish.  Threads
            # share the in-process backend; refuse the combination loudly.
            raise ValueError(
                f"store {self.store.locator} is process-local; "
                f"use threads (use_processes=False) to serve it"
            )
        self.max_finished_jobs = max(1, int(max_finished_jobs))
        self._executor: Optional[Executor] = None
        self._shared_cache = PersistentCalibrationCache(self.store)
        self._cache_lock = threading.Lock()
        self._jobs: Dict[str, SweepJob] = {}
        self._digest_locks: Dict[str, asyncio.Lock] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Submission / lifecycle
    # ------------------------------------------------------------------
    async def submit(self, spec: SweepSpec, resume: bool = False) -> SweepJob:
        """Schedule a sweep; returns its job immediately (state ``queued``)."""
        digest = journal_spec_digest(spec)
        sweep_id = f"{digest}-{next(self._ids)}"
        job = SweepJob(sweep_id, spec, resume)
        self._jobs[sweep_id] = job
        job._task = asyncio.create_task(self._run_job(job, digest))
        return job

    def job(self, sweep_id: str) -> SweepJob:
        try:
            return self._jobs[sweep_id]
        except KeyError:
            raise KeyError(f"unknown sweep {sweep_id!r}") from None

    def status(self, sweep_id: str) -> dict:
        return self.job(sweep_id).status()

    def jobs(self) -> List[SweepJob]:
        """All jobs this coordinator has seen, submission order."""
        return list(self._jobs.values())

    async def cancel(self, sweep_id: str) -> dict:
        """Stop a sweep.  Completed tasks stay journaled, so a later
        ``submit(..., resume=True)`` of the same spec picks up exactly
        where the cancellation landed."""
        job = self.job(sweep_id)
        if job.state in ACTIVE_STATES and job._task is not None:
            job._task.cancel()
            try:
                await job._task
            except asyncio.CancelledError:
                pass
            if job.state in ACTIVE_STATES:
                # cancelled before the job coroutine ever ran: its own
                # cancellation handler never fired, so settle the state
                # here (watchers and result() waiters must not hang)
                await self._set_state(job, "cancelled")
        return job.status()

    async def result(self, sweep_id: str) -> SweepResult:
        """Wait for a sweep to finish; its assembled result, or raise with
        the failure/cancellation story."""
        job = self.job(sweep_id)
        async with job._cond:
            while job.state in ACTIVE_STATES:
                await job._cond.wait()
        if job.state == "done":
            assert job.result is not None
            return job.result
        raise RuntimeError(
            f"sweep {sweep_id} {job.state}"
            + (f": {job.error}" if job.error else "")
        )

    async def watch(self, sweep_id: str) -> AsyncIterator[dict]:
        """Stream a sweep's task events: replay missed rows, then live.

        Every watcher — whenever it subscribes — receives every journal
        row of the sweep exactly once, in the journal's (completion)
        order: the event list is append-only and each watcher holds a
        monotone cursor into it.  Ends when the job reaches a terminal
        state and the cursor has drained.
        """
        job = self.job(sweep_id)
        cursor = 0
        while True:
            async with job._cond:
                while cursor >= len(job.events) and job.state in ACTIVE_STATES:
                    await job._cond.wait()
                batch = list(job.events[cursor:])
                finished = job.state not in ACTIVE_STATES
            for event in batch:
                yield event
            cursor += len(batch)
            if finished and cursor >= len(job.events):
                return

    async def close(self) -> None:
        """Cancel live jobs and release the executor."""
        for job in list(self._jobs.values()):
            if job.state in ACTIVE_STATES:
                await self.cancel(job.sweep_id)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _get_executor(self) -> Executor:
        if self._executor is None:
            if self.use_processes:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-sweep",
                )
        return self._executor

    def _task_callable(self, session, coord):
        """The zero-arg callable executing one coordinate — the same
        dispatch tuple the sync runner uses, plus the shared-cache view
        when tasks run in-process."""
        spec, point, trials, store_root = session.task_args(coord)
        if self.use_processes or not spec.reuse_calibration:
            return functools.partial(execute_task, spec, point, trials, store_root)
        view = _SharedCacheView(self._shared_cache, self._cache_lock)
        return functools.partial(
            execute_task, spec, point, trials, store_root, cache=view
        )

    async def _publish(self, job: SweepJob, entry: dict, replayed: bool) -> None:
        event = dict(entry)
        event["replayed"] = replayed
        async with job._cond:
            job.events.append(event)
            job._cond.notify_all()

    async def _set_state(self, job: SweepJob, state: str) -> None:
        async with job._cond:
            job.state = state
            job._cond.notify_all()
        if state in TERMINAL_STATES:
            self._prune_finished(keep=job.sweep_id)

    def _prune_finished(self, keep: str) -> None:
        """Evict the oldest terminal jobs beyond the retention cap (the
        just-finished ``keep`` job always survives this round), then drop
        digest locks that no longer guard any registered job."""
        finished = [
            j for j in self._jobs.values()
            if j.state in TERMINAL_STATES and j.sweep_id != keep
        ]
        excess = len(finished) + 1 - self.max_finished_jobs
        for job in finished[:max(0, excess)]:  # insertion order = oldest first
            del self._jobs[job.sweep_id]
        live_digests = {
            job.sweep_id.rsplit("-", 1)[0] for job in self._jobs.values()
        }
        for digest in list(self._digest_locks):
            lock = self._digest_locks[digest]
            if digest not in live_digests and not lock.locked():
                del self._digest_locks[digest]

    async def _run_job(self, job: SweepJob, digest: str) -> None:
        loop = asyncio.get_running_loop()
        lock = self._digest_locks.setdefault(digest, asyncio.Lock())
        try:
            async with lock:  # one live writer per journal (queue, don't fail)
                runner = ParallelSweepRunner(
                    workers=1, store=self.store, resume=job.resume
                )
                # open_session does file I/O (plan probes, journal fsync):
                # off the loop, like every other blocking step below.  The
                # executor thread cannot be interrupted, so a cancellation
                # landing mid-open must still close the session the thread
                # goes on to produce — an abandoned one would hold the
                # journal's advisory lock (our own pid!) and block this
                # spec until the server restarts.
                opening = loop.run_in_executor(
                    None, runner.open_session, job.spec
                )
                try:
                    session = await asyncio.shield(opening)
                except asyncio.CancelledError:
                    opening.add_done_callback(_close_abandoned_session)
                    raise
                try:
                    # tasks actually run on the coordinator's shared
                    # executor, not the runner's (unused) pool — report
                    # that width in the assembled result
                    session.workers = (
                        max(1, min(self.workers, len(session.pending)))
                        if session.pending
                        else 1
                    )
                    job.plan_counts = (
                        session.plan.counts if session.plan else None
                    )
                    await self._set_state(job, "running")
                    # Journal-replayed outcomes reach watchers through the
                    # same event channel as live ones (canonical order,
                    # flagged replayed) — a watch on a resumed sweep still
                    # sees every row exactly once.
                    for coord in session.coords:
                        if coord in session.outcomes:
                            await self._publish(
                                job,
                                task_entry(session.outcomes[coord]),
                                replayed=True,
                            )
                    pending = list(session.pending)

                    async def run_one(coord):
                        outcome = await loop.run_in_executor(
                            self._get_executor(),
                            self._task_callable(session, coord),
                        )
                        return coord, outcome

                    tasks = [
                        asyncio.create_task(run_one(coord)) for coord in pending
                    ]
                    try:
                        for fut in asyncio.as_completed(tasks):
                            coord, outcome = await fut
                            # journal append (fsync) off the loop; appends
                            # are serialised by this job task itself
                            await loop.run_in_executor(
                                None, session.record, coord, outcome
                            )
                            await self._publish(
                                job, task_entry(outcome), replayed=False
                            )
                    except BaseException:
                        for t in tasks:
                            t.cancel()
                        raise
                finally:
                    await loop.run_in_executor(None, session.close)
                job.result = session.assemble()
                await self._set_state(job, "done")
        except asyncio.CancelledError:
            # cancel() owns this path; completed tasks are journaled, so
            # the sweep is resumable from exactly here
            await self._set_state(job, "cancelled")
        except Exception as exc:  # journal refusals, worker crashes, ...
            job.error = str(exc)
            await self._set_state(job, "failed")
