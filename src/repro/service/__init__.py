"""Sweep service: asyncio coordination, streaming results, warm-first plans.

The repo's fifth subsystem.  ``repro.pipeline`` executes one sweep per
process invocation and blocks until the grid finishes; this package turns
that batch engine into a **long-running, multi-client sweep service**
around one shared :class:`~repro.store.artifacts.ArtifactStore`:

* :class:`~repro.service.planner.SweepPlanner` — pre-scans the store's
  calibration artifact tier and the sweep journal for a spec, partitions
  task coordinates into *journaled* (replayable), *warm* (calibrations on
  disk) and *cold*, orders execution warm-first and sizes the worker pool
  to the cold remainder.  Scheduling only — the engine's coordinate-based
  seed derivation guarantees any order is bit-identical;
* :class:`~repro.service.coordinator.SweepCoordinator` — an asyncio
  coordinator driving the pipeline's :class:`~repro.pipeline.runner.SweepSession`
  task dispatch off the event loop: multiple sweeps run concurrently under
  one shared :class:`~repro.store.calcache.PersistentCalibrationCache`,
  and every completed :class:`~repro.pipeline.runner.TaskOutcome` is
  published to subscribers the moment it lands in the journal (each
  watcher sees every journal row exactly once);
* :class:`~repro.service.server.SweepServer` /
  :class:`~repro.service.client.SweepClient` — a stdlib-asyncio
  line-delimited-JSON protocol (``submit`` / ``status`` / ``watch`` /
  ``cancel`` / ``results``) hosting a store over TCP, so ``repro serve``
  runs the service and ``repro submit --follow`` streams a grid's journal
  rows live from another process or machine;
* :class:`~repro.service.queue.TaskQueue` /
  :class:`~repro.service.fleet.FleetWorker` — the remote worker fleet:
  workers ``attach`` over the same protocol and pull task coordinates
  (``lease`` / ``complete`` / ``heartbeat``); each claim is a
  backend-held lease in the shared store, so a worker that dies mid-task
  is detected by lease expiry and its coordinate re-issued, with
  exactly-once journaling and bit-identical results (``repro worker
  --connect`` joins a fleet from another machine; certified by
  ``tests/fleet_conformance.py``).

Quick start::

    # terminal 1 — host a store as a service
    #   repro serve --store ./sweep-store --port 7341

    # terminal 2 — submit a grid and stream rows as tasks land
    #   repro submit --devices quito lima --trials 3 --follow

    # same thing programmatically
    import asyncio
    from repro.pipeline import BackendSpec, SweepSpec
    from repro.service import SweepCoordinator

    async def main():
        coord = SweepCoordinator("./sweep-store", workers=2)
        spec = SweepSpec(backends=(BackendSpec(kind="device", name="quito"),),
                         trials=3, seed=0)
        job = await coord.submit(spec)
        async for event in coord.watch(job.sweep_id):
            print(event["point"], event["trials"], event["duration"])
        result = await coord.result(job.sweep_id)
        await coord.close()

    asyncio.run(main())
"""

from repro.service.client import ServiceError, SweepClient, submit_and_follow
from repro.service.coordinator import SweepCoordinator, SweepJob
from repro.service.fleet import FleetWorker, WorkerReport
from repro.service.planner import SweepPlanner, TaskPlan
from repro.service.queue import TaskQueue
from repro.service.server import SweepServer
from repro.service.tenancy import (
    AdmissionError,
    TenantLedger,
    TenantQuota,
    tenant_backend,
)

__all__ = [
    "SweepPlanner",
    "TaskPlan",
    "SweepCoordinator",
    "SweepJob",
    "SweepServer",
    "SweepClient",
    "ServiceError",
    "submit_and_follow",
    "TaskQueue",
    "FleetWorker",
    "WorkerReport",
    "AdmissionError",
    "TenantQuota",
    "TenantLedger",
    "tenant_backend",
]
