"""Declarative sweep specifications.

A :class:`SweepSpec` names a grid — backends (architecture families at
chosen sizes, or IBM-like device profiles) x target circuits x total shot
budgets x mitigation methods x independent trials — without saying anything
about *how* it runs.  The :mod:`repro.pipeline.runner` engine executes the
same spec serially or over a process pool with bit-identical results,
because every stochastic stream a trial consumes is derived from the spec
seed and the trial's grid coordinates (via
:func:`repro.utils.rng.stable_seed`), never from execution order.

Specs serialise to/from JSON so a sweep can be version-controlled and
replayed from the command line (``repro sweep --spec grid.json``)::

    {
      "backends": [{"kind": "device", "name": "quito"},
                   {"kind": "architecture", "name": "grid", "qubits": 6}],
      "circuits": [{"kind": "ghz", "root": 0}],
      "shots": [16000],
      "methods": ["Bare", "Linear", "CMC"],
      "trials": 3,
      "seed": 7
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.backends.backend import SimulatedBackend
from repro.backends.profiles import (
    ARCHITECTURES,
    DEVICE_PROFILES,
    architecture_backend,
    device_profile_backend,
)
from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_bfs
from repro.topology.coupling_map import CouplingMap

__all__ = ["BackendSpec", "CircuitSpec", "SweepSpec"]


@dataclass(frozen=True)
class BackendSpec:
    """One backend point of a sweep grid.

    ``kind="architecture"`` builds a simulated-architecture device
    (:func:`~repro.backends.profiles.architecture_backend`; ``qubits``
    required), ``kind="device"`` an IBM-like profile
    (:func:`~repro.backends.profiles.device_profile_backend`).  The noise
    *draw* is taken from the rng the engine passes to :meth:`build`, so one
    spec point yields an independent device realisation per trial (or a
    shared one, under ``SweepSpec.share_backend_across_trials``).

    ``correlation_placement`` keeps :func:`architecture_backend`'s paper
    default of ``"none"`` ("biased but not correlated", §V-A); pass
    ``"coupling"``/``"off_coupling"`` to inject correlated readout channels
    (the GHZ-sweep driver does, per its documented substitution).
    """

    kind: str
    name: str
    qubits: Optional[int] = None
    gate_noise: bool = True
    correlation_placement: str = "none"
    error_1q: float = 0.001
    error_2q: float = 0.01
    readout_low: float = 0.02
    readout_high: float = 0.08

    def __post_init__(self) -> None:
        if self.kind not in ("architecture", "device"):
            raise ValueError(f"unknown backend kind {self.kind!r}")
        if self.kind == "architecture":
            if self.name not in ARCHITECTURES:
                raise KeyError(
                    f"unknown architecture {self.name!r}; known: "
                    f"{sorted(ARCHITECTURES)}"
                )
            if self.qubits is None or self.qubits < 1:
                raise ValueError("architecture backends need qubits >= 1")
        else:
            # Same normalisation device_profile_backend applies, so specs
            # accept the published "ibm_"/"ibmq_"-prefixed spellings too.
            key = self.name.lower().removeprefix("ibm_").removeprefix("ibmq_")
            if key not in DEVICE_PROFILES:
                raise KeyError(
                    f"unknown device profile {self.name!r}; known: "
                    f"{sorted(DEVICE_PROFILES)}"
                )
            object.__setattr__(self, "name", key)
            # Device profiles fix their own noise recipe; accepting these
            # fields here would silently ignore them (while still changing
            # the spec digest, and so every derived stream).
            defaults = {
                f.name: f.default
                for f in fields(type(self))
                if f.name
                in (
                    "correlation_placement",
                    "error_1q",
                    "error_2q",
                    "readout_low",
                    "readout_high",
                )
            }
            overridden = [
                name for name, d in defaults.items() if getattr(self, name) != d
            ]
            if overridden:
                raise ValueError(
                    f"device profiles fix their noise recipe; "
                    f"{overridden} cannot be overridden (use gate_noise, or "
                    f"an architecture backend)"
                )

    @property
    def label(self) -> str:
        """Stable human-readable point label (sweep table column header)."""
        if self.kind == "architecture":
            return f"{self.name}-{self.qubits}q"
        return self.name.lower()

    def build(self, rng: np.random.Generator) -> SimulatedBackend:
        """Realise the backend, drawing its noise model from ``rng``."""
        if self.kind == "architecture":
            return architecture_backend(
                self.name,
                int(self.qubits),  # type: ignore[arg-type]
                error_1q=self.error_1q if self.gate_noise else 0.0,
                error_2q=self.error_2q if self.gate_noise else 0.0,
                readout_low=self.readout_low,
                readout_high=self.readout_high,
                correlation_placement=self.correlation_placement,  # type: ignore[arg-type]
                rng=rng,
            )
        return device_profile_backend(self.name, rng=rng, gate_noise=self.gate_noise)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BackendSpec":
        return cls(**data)


@dataclass(frozen=True)
class CircuitSpec:
    """One target-circuit point: a GHZ fan-out parameterised by root/size.

    The GHZ benchmark is the paper's only target circuit (§V-B); varying
    ``root`` produces distinct fan-out orders over the same device (distinct
    circuits with the same ideal bimodal distribution), and ``num_qubits``
    grows GHZ_n on a fixed device as in Figs. 13-15.
    """

    kind: str = "ghz"
    root: int = 0
    num_qubits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind != "ghz":
            raise ValueError(
                f"unknown circuit kind {self.kind!r} (only 'ghz' is defined)"
            )

    @property
    def label(self) -> str:
        size = "" if self.num_qubits is None else f"_{self.num_qubits}"
        return f"{self.kind}{size}@root{self.root}"

    def build(self, coupling_map: CouplingMap) -> Circuit:
        return ghz_bfs(coupling_map, root=self.root, num_qubits=self.num_qubits)

    def ideal_distribution(self, circuit: Circuit) -> np.ndarray:
        """Ideal outcome distribution over the circuit's measured qubits."""
        k = len(circuit.measured_qubits)
        ideal = np.zeros(1 << k)
        ideal[0] = ideal[-1] = 0.5
        return ideal

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitSpec":
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep grid plus the suite options shared by every point.

    Execution semantics (enforced by the runner, documented here because
    they define what a spec *means*):

    * one task = one (backend point, trial); tasks are independent and may
      run in any order, in any process;
    * per-trial streams (noise draw, calibration sampling, target sampling,
      JIGSAW subset draws) derive from ``seed`` + grid coordinates, so
      results are bit-identical for any worker count;
    * ``share_backend_across_trials=True`` pins one noise draw per backend
      point — trials then differ only in target shot noise, and calibration
      becomes shareable across trials (the paper's §VII-A reuse scenario);
    * ``reuse_calibration=True`` memoizes calibration per (point, trial,
      method, budget) — see :mod:`repro.pipeline.cache` for why hits cannot
      change results.
    """

    backends: Tuple[BackendSpec, ...]
    circuits: Tuple[CircuitSpec, ...] = (CircuitSpec(),)
    shots: Tuple[int, ...] = (16000,)
    methods: Optional[Tuple[str, ...]] = None
    trials: int = 1
    seed: int = 0
    full_max_qubits: int = 10
    linear_max_qubits: Optional[int] = None
    err_locality: int = 3
    jigsaw_subsets: int = 4
    cmc_k: int = 1
    share_backend_across_trials: bool = False
    reuse_calibration: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "circuits", tuple(self.circuits))
        object.__setattr__(self, "shots", tuple(int(s) for s in self.shots))
        if self.methods is not None:
            object.__setattr__(self, "methods", tuple(self.methods))
        if not self.backends:
            raise ValueError("spec needs at least one backend")
        if not self.circuits:
            raise ValueError("spec needs at least one circuit")
        if not self.shots or any(s < 1 for s in self.shots):
            raise ValueError("shot budgets must be positive")
        if len(set(self.shots)) != len(self.shots):
            # records are keyed by budget value, so duplicate budgets would
            # pool their samples indistinguishably
            raise ValueError(f"duplicate shot budgets in {self.shots}")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if not isinstance(self.seed, int):
            raise TypeError("spec seed must be an int (stable derivation)")
        if self.methods is not None:
            from repro.experiments.runner import METHOD_ORDER

            unknown = set(self.methods) - set(METHOD_ORDER)
            if unknown:
                raise KeyError(f"unknown methods: {sorted(unknown)}")

    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Independent units of parallel work.

        One task per (backend point, trial) — except under
        ``share_backend_across_trials``, where all trials of a point share
        one noise draw *and* one calibration, so they form a single task
        (splitting them across workers would force each worker to re-measure
        the shared calibration, paying device time for nothing).
        """
        if self.share_backend_across_trials:
            return len(self.backends)
        return len(self.backends) * self.trials

    @property
    def num_runs(self) -> int:
        """Total method-suite invocations the sweep performs."""
        return (
            len(self.backends)
            * self.trials
            * len(self.circuits)
            * len(self.shots)
        )

    def task_coordinates(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """All (backend_index, trials) task units, in canonical order."""
        if self.share_backend_across_trials:
            return [
                (point, tuple(range(self.trials)))
                for point in range(len(self.backends))
            ]
        return [
            (point, (trial,))
            for point in range(len(self.backends))
            for trial in range(self.trials)
        ]

    def with_options(self, **changes) -> "SweepSpec":
        """A copy with fields replaced (convenience over dataclasses.replace)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "backends": [b.to_dict() for b in self.backends],
            "circuits": [c.to_dict() for c in self.circuits],
            "shots": list(self.shots),
            "methods": None if self.methods is None else list(self.methods),
            "trials": self.trials,
            "seed": self.seed,
            "full_max_qubits": self.full_max_qubits,
            "linear_max_qubits": self.linear_max_qubits,
            "err_locality": self.err_locality,
            "jigsaw_subsets": self.jigsaw_subsets,
            "cmc_k": self.cmc_k,
            "share_backend_across_trials": self.share_backend_across_trials,
            "reuse_calibration": self.reuse_calibration,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown spec fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["backends"] = tuple(
            BackendSpec.from_dict(b) for b in data.get("backends", ())
        )
        if "circuits" in data:
            kwargs["circuits"] = tuple(
                CircuitSpec.from_dict(c) for c in data["circuits"]
            )
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_json_file(cls, path) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
