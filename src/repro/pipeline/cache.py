"""Calibration-state sharing across sweep trials.

Calibration dominates wall-clock for the matrix methods (Full, Linear,
CMC, CMC-ERR) at larger sizes: a Table-II-style sweep that evaluates the
same method on several target circuits re-measures an *identical*
calibration for every one of them.  :class:`CalibrationCache` removes that
waste while provably not changing any result, by exploiting the engine's
seeding discipline:

* every logical calibration event in a sweep has a stable key (spec seed,
  sweep point, trial, method, shot budget), and the backend is reseeded
  from that key before the calibration circuits run — so re-measuring a
  calibration with the same key yields bit-identical matrices;
* the cache is therefore *pure memoization* of a deterministic function:
  a hit returns exactly what a cold re-measurement would have produced;
* the equal-budget protocol (§V of the paper) is preserved on hits by
  replaying the recorded shot/circuit spend against the trial's
  :class:`~repro.backends.budget.ShotBudget`
  (:meth:`~repro.backends.budget.ShotBudget.replay`), so the target
  circuit executes with the same remaining shots as after a cold
  calibration.

The combination makes "cache on" vs "cache off" produce bit-identical
method errors — the property ``tests/test_pipeline_engine.py`` pins —
while skipping the repeated calibration executions (the saved work is
reported via :meth:`CalibrationCache.stats`).

A cache instance is scoped to one sweep task (one backend noise draw):
keys embed the spec seed and sweep coordinates, so entries never leak
between unrelated sweeps, but the object itself is cheap and should not be
shared across specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import obs

__all__ = ["CalibrationRecord", "CalibrationCache"]

CacheKey = Tuple


@dataclass
class CalibrationRecord:
    """One memoized calibration event.

    ``state`` is the method's :meth:`~repro.core.base.Mitigator.calibration_state`
    snapshot; ``shots_spent`` / ``circuits_executed`` are the ledger entries
    the cold calibration charged, replayed verbatim on every hit.
    """

    state: dict
    shots_spent: int
    circuits_executed: int


@dataclass
class CacheStats:
    """Hit/miss counters plus the device work the hits avoided."""

    hits: int = 0
    misses: int = 0
    saved_shots: int = 0
    saved_circuits: int = 0


class CalibrationCache:
    """Memoizes reusable calibration state keyed by logical identity."""

    def __init__(self) -> None:
        self._entries: Dict[CacheKey, CalibrationRecord] = {}
        self._stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: CacheKey) -> Optional[CalibrationRecord]:
        """Return the record for ``key`` without touching the stats.

        The accounting-free sibling of :meth:`lookup`, for callers that
        probe on behalf of *someone else's* ledger — the service
        coordinator's per-task cache views consult a shared cache through
        this, then count the hit against the task that actually benefited.
        """
        return self._entries.get(key)

    def lookup(self, key: CacheKey) -> Optional[CalibrationRecord]:
        """Return the record for ``key``, counting a hit when found.

        Misses are counted at :meth:`store` time instead, so the miss
        counter means "cold calibrations actually performed" — probes for
        entries that can never exist (methods with no state, N/A cells)
        do not inflate it.
        """
        record = self._entries.get(key)
        if record is None:
            return None
        self._stats.hits += 1
        self._stats.saved_shots += record.shots_spent
        self._stats.saved_circuits += record.circuits_executed
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.counter(
                "repro_calcache_lookups_total",
                "Calibration cache lookups by tier and result",
                ("tier", "result"),
            ).labels(tier="monolithic", result="hit").inc()
            telemetry.counter(
                "repro_cache_saved_shots_total",
                "Device shots avoided by calibration cache hits",
            ).inc(record.shots_spent)
        return record

    def store(
        self,
        key: CacheKey,
        state: dict,
        shots_spent: int,
        circuits_executed: int,
    ) -> None:
        """Record a cold calibration's state and ledger spend."""
        self._stats.misses += 1
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.counter(
                "repro_calcache_lookups_total",
                "Calibration cache lookups by tier and result",
                ("tier", "result"),
            ).labels(tier="monolithic", result="miss").inc()
        self._entries[key] = CalibrationRecord(
            state=state,
            shots_spent=int(shots_spent),
            circuits_executed=int(circuits_executed),
        )

    def stats(self) -> CacheStats:
        """Counters so far (live object; copy if you need a snapshot)."""
        return self._stats

    def clear(self) -> None:
        self._entries.clear()
