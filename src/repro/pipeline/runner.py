"""The parallel sweep engine.

Executes a :class:`~repro.pipeline.spec.SweepSpec` as independent *tasks*
(one per backend point x trial; one per backend point when the spec shares
the noise draw across trials) over a ``concurrent.futures`` process pool —
or serially in-process, which produces **bit-identical** results.  The
identity holds because a task touches no shared mutable state and every
stochastic stream it consumes derives from ``(spec seed, grid
coordinates)`` via :func:`repro.utils.rng.stable_seed`:

=====================  ==============================================
stream                 derivation tokens
=====================  ==============================================
backend noise draw     ``("backend", digest, point[, trial])``
suite rng (JIGSAW)     ``("suite", digest, point, trial, shots, ci)``
calibration sampling   ``("calibration", scope + (method, shots))``
target sampling        ``("execution", scope, method, shots)``
=====================  ==============================================

``digest`` is a stable hash of the spec's scientific fields, so two
different specs can never share streams (or cache entries) by accident.

Calibration reuse: each task owns a
:class:`~repro.pipeline.cache.CalibrationCache`, hit by the sweep cells
that share a calibration event (multiple circuits per trial; multiple
trials when the backend draw is shared).  Because calibration events are
pure functions of their key (see the cache module docs), reusing an entry
— or re-measuring it cold — cannot change any number, only the wall-clock
and the executed-circuit count.

:func:`map_tasks` exposes the same serial/pool switch as a generic ordered
map, used by the week-structured experiment drivers (ERR stability,
correlation maps) whose work units are not method suites.

Persistence (``store=`` / ``resume=``): pointing a sweep at a
:class:`~repro.store.artifacts.ArtifactStore` directory journals every
completed task (:class:`~repro.store.journal.SweepJournal`, fsynced per
entry) and swaps the per-task calibration cache for the two-tier
:class:`~repro.store.calcache.PersistentCalibrationCache`.  Because every
task is a pure function of ``(spec, coordinates)``, replaying journaled
tasks under ``resume=True`` — or restoring calibrations a previous process
measured — is bit-identical to recomputing them; a crashed sweep loses at
most the tasks that were in flight.

Scheduling (store-aware, warm-first): with a store attached, the runner
asks the :class:`~repro.service.planner.SweepPlanner` to pre-scan the
journal and the calibration artifact tier, executes warm tasks (those
with persisted calibrations) before cold ones, and narrows the process
pool to the cold remainder.  Reordering cannot change a single number —
every stream derives from grid coordinates, not execution order — so the
assembled result stays bit-identical to a canonical-order run (pinned in
``tests/test_service.py``); only the time-to-first-result and the pool
shape move.

Sessions: :meth:`ParallelSweepRunner.open_session` exposes the journal
open / replay / planning / reassembly machinery as a
:class:`SweepSession`, so the synchronous :meth:`ParallelSweepRunner.run`
loop and the asyncio :class:`~repro.service.coordinator.SweepCoordinator`
drive the *same* task dispatch (``session.task_args`` →
:func:`execute_task` → ``session.record``) rather than forking the engine.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro._version import __version__
from repro.analysis.stats import QuantileSummary, summarize_quantiles
from repro.pipeline.cache import CalibrationCache
from repro.pipeline.spec import SweepSpec
from repro.utils.rng import stable_rng, stable_seed

if TYPE_CHECKING:  # runtime import is lazy (repro.store imports this module)
    from repro.service.planner import TaskPlan
    from repro.store.artifacts import ArtifactStore
    from repro.store.journal import SweepJournal

#: What callers may pass as ``store=``: a directory path, a URL-style
#: store locator (``dir:///path``, ``mem://name``, ``s3://bucket/prefix``
#: — see :mod:`repro.store.locator`) or a live store.
StoreLike = Union[str, os.PathLike, "ArtifactStore", None]

__all__ = [
    "SweepRecord",
    "SweepResult",
    "SweepSession",
    "ParallelSweepRunner",
    "run_sweep",
    "map_tasks",
    "execute_task",
    "task_payload",
    "execute_payload",
    "spec_digest",
]

ProgressCallback = Callable[[int, int, "TaskOutcome"], None]
PlanCallback = Callable[["TaskPlan"], None]

#: One task's grid coordinate: (backend point, trials co-located in it).
TaskCoord = Tuple[int, Tuple[int, ...]]


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRecord:
    """One (backend point, trial, budget, circuit, method) outcome."""

    backend_index: int
    backend_label: str
    trial: int
    shots: int
    circuit_index: int
    circuit_label: str
    method: str
    error: Optional[float]
    shots_spent: int
    circuits_executed: int
    not_applicable: bool
    failure: str

    @property
    def available(self) -> bool:
        return not self.not_applicable and self.error is not None

    def to_dict(self) -> dict:
        return {
            "backend": self.backend_label,
            "backend_index": self.backend_index,
            "trial": self.trial,
            "shots": self.shots,
            "circuit": self.circuit_label,
            "circuit_index": self.circuit_index,
            "method": self.method,
            "error": self.error,
            "shots_spent": self.shots_spent,
            "circuits_executed": self.circuits_executed,
            "not_applicable": self.not_applicable,
            "failure": self.failure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRecord":
        """Exact inverse of :meth:`to_dict` (pinned round-trip test).

        The store's sweep journal rides on this: a journaled record must
        reconstruct bit-identically, or resumed sweeps would drift from
        uninterrupted ones.
        """
        if "backend_index" not in data or "circuit_index" not in data:
            # repro < 1.1.0 --json output: labels only.  Indices cannot be
            # recovered unambiguously (duplicate backend points share a
            # label), so fail with the format story instead of a KeyError.
            raise ValueError(
                "record lacks backend_index/circuit_index — this JSON was "
                "written by repro < 1.1.0, before results were rehydratable; "
                "re-run the sweep to regenerate it"
            )
        return cls(
            backend_index=int(data["backend_index"]),
            backend_label=str(data["backend"]),
            trial=int(data["trial"]),
            shots=int(data["shots"]),
            circuit_index=int(data["circuit_index"]),
            circuit_label=str(data["circuit"]),
            method=str(data["method"]),
            error=None if data["error"] is None else float(data["error"]),
            shots_spent=int(data["shots_spent"]),
            circuits_executed=int(data["circuits_executed"]),
            not_applicable=bool(data["not_applicable"]),
            failure=str(data["failure"]),
        )


@dataclass
class TaskOutcome:
    """Everything one task ships back to the coordinator."""

    backend_index: int
    trials: Tuple[int, ...]
    records: List[SweepRecord]
    cache_hits: int = 0
    cache_misses: int = 0
    saved_shots: int = 0
    saved_circuits: int = 0
    duration: float = 0.0
    #: Correlation id for tracing (``{spec digest16}.p{point}.t{trials}``).
    #: Deterministic in (spec, coordinate) — never in telemetry state or
    #: execution venue — so it can live in journal rows and wire frames
    #: without perturbing bit-identity.  Empty on outcomes replayed from
    #: pre-1.7 journals.
    trace: str = ""


@dataclass
class SweepResult:
    """Assembled sweep outcome: flat records plus aggregate accessors."""

    spec: SweepSpec
    records: List[SweepRecord]
    wall_time: float = 0.0
    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    saved_shots: int = 0
    saved_circuits: int = 0
    #: Library version that *produced* the records.  Survives JSON round
    #: trips, so rehydrating an old result and re-serialising it does not
    #: relabel which code generated the numbers.
    version: str = __version__

    # ------------------------------------------------------------------
    def iter_records(
        self,
        backend_index: Optional[int] = None,
        method: Optional[str] = None,
        shots: Optional[int] = None,
        circuit_index: Optional[int] = None,
        trial: Optional[int] = None,
    ) -> Iterator[SweepRecord]:
        """Records matching every given filter, in canonical order."""
        for rec in self.records:
            if backend_index is not None and rec.backend_index != backend_index:
                continue
            if method is not None and rec.method != method:
                continue
            if shots is not None and rec.shots != shots:
                continue
            if circuit_index is not None and rec.circuit_index != circuit_index:
                continue
            if trial is not None and rec.trial != trial:
                continue
            yield rec

    def methods(self) -> List[str]:
        """Methods present, in first-seen (suite) order."""
        out: List[str] = []
        for rec in self.records:
            if rec.method not in out:
                out.append(rec.method)
        return out

    def error_samples(
        self,
        backend_index: int,
        method: str,
        shots: Optional[int] = None,
        circuit_index: Optional[int] = None,
    ) -> List[float]:
        """Available per-trial (and per-circuit) errors for one cell."""
        return [
            rec.error
            for rec in self.iter_records(
                backend_index=backend_index,
                method=method,
                shots=shots,
                circuit_index=circuit_index,
            )
            if rec.available
        ]

    def errors_by_method(self) -> Dict[str, List[Optional[float]]]:
        """All errors per method in record order (``None`` where N/A)."""
        out: Dict[str, List[Optional[float]]] = {}
        for rec in self.records:
            out.setdefault(rec.method, []).append(
                rec.error if rec.available else None
            )
        return out

    def _point_labels(self) -> List[str]:
        """Per-point display labels, disambiguated when points repeat."""
        labels = [b.label for b in self.spec.backends]
        seen: Dict[str, int] = {}
        for label in labels:
            seen[label] = seen.get(label, 0) + 1
        return [
            f"{label}#{point}" if seen[label] > 1 else label
            for point, label in enumerate(labels)
        ]

    def summary_rows(
        self, lo: float = 0.1, hi: float = 0.9
    ) -> Dict[str, Dict[str, Optional[QuantileSummary]]]:
        """Table-II-style rows: method x backend-point cells.

        Cells aggregate over trials and circuits; when the spec sweeps
        several budgets the columns are ``label@shots``; duplicate backend
        points are disambiguated as ``label#point``.
        """
        multi_budget = len(self.spec.shots) > 1
        point_labels = self._point_labels()
        rows: Dict[str, Dict[str, Optional[QuantileSummary]]] = {}
        for method in self.methods():
            cells: Dict[str, Optional[QuantileSummary]] = {}
            for point, plabel in enumerate(point_labels):
                for shots in self.spec.shots:
                    label = f"{plabel}@{shots}" if multi_budget else plabel
                    samples = self.error_samples(point, method, shots=shots)
                    cells[label] = (
                        summarize_quantiles(samples, lo, hi) if samples else None
                    )
            rows[method] = cells
        return rows

    def column_labels(self) -> List[str]:
        multi_budget = len(self.spec.shots) > 1
        return [
            f"{label}@{s}" if multi_budget else label
            for label in self._point_labels()
            for s in self.spec.shots
        ]

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "spec": self.spec.to_dict(),
            "records": [rec.to_dict() for rec in self.records],
            "wall_time": self.wall_time,
            "workers": self.workers,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "saved_shots": self.saved_shots,
                "saved_circuits": self.saved_circuits,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`: rebuild a result from persisted JSON.

        ``version`` (stamped by the writer for artifact traceability) and
        ``cache`` are metadata, not identity — both are restored verbatim.
        The scientific content (spec + records) round-trips exactly.
        """
        cache = data.get("cache", {})
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            records=[SweepRecord.from_dict(r) for r in data["records"]],
            wall_time=float(data.get("wall_time", 0.0)),
            workers=int(data.get("workers", 1)),
            cache_hits=int(cache.get("hits", 0)),
            cache_misses=int(cache.get("misses", 0)),
            saved_shots=int(cache.get("saved_shots", 0)),
            saved_circuits=int(cache.get("saved_circuits", 0)),
            version=str(data.get("version", "unknown")),
        )

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        import json

        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Task execution (runs inside worker processes)
# ----------------------------------------------------------------------
def spec_digest(spec: SweepSpec) -> int:
    """Stable hash of the scientific spec fields (stream/cache namespace).

    Public because the :mod:`repro.service.planner` derives calibration
    artifact keys from it when pre-scanning store availability — the
    planner must probe exactly the keys :func:`execute_task` will use.
    """
    data = spec.to_dict()
    data.pop("reuse_calibration", None)  # caching policy is not identity
    return stable_seed("spec", repr(sorted(data.items())))


def task_calibration_scopes(
    spec: SweepSpec, point: int, trials: Tuple[int, ...]
) -> List[Tuple]:
    """The calibration scope tuples one task's suite runs will key on.

    Mirrors :func:`execute_task`'s derivation exactly (one scope per task
    under shared backend draws, one per trial otherwise) so the planner's
    warm probes and the engine's cache lookups can never drift apart.
    """
    digest = spec_digest(spec)
    if spec.share_backend_across_trials:
        return [("cal", digest, point)]
    return [("cal", digest, point) + (trial,) for trial in trials]


def execute_task(
    spec: SweepSpec,
    point: int,
    trials: Tuple[int, ...],
    store_root: Optional[str] = None,
    cache: Optional[CalibrationCache] = None,
    store_options=None,
) -> TaskOutcome:
    """Run every (trial, budget, circuit, method) cell of one task.

    ``trials`` is a single trial normally, or all of a point's trials when
    the spec shares the backend draw across them (they then also share
    calibration, so co-locating them maximises cache reuse).

    ``store_root`` (a path or store locator string, so the task pickles
    into worker processes)
    upgrades the task's calibration cache to the persistent two-tier one:
    in-memory hits behave exactly as before, and calibrations measured by
    any earlier process running the same logical sweep are restored from
    disk instead of re-executed.  ``store_options`` (an
    :class:`~repro.store.codecs.EncodeOptions`, also picklable) carries
    the originating store's payload encoding into the reopen, so a
    sweep against a dense-mode store writes dense artifacts from pool
    workers too; ``None`` keeps the reopened store's own default.

    ``cache`` overrides cache construction entirely (in-process callers
    only — caches do not pickle into pool workers).  The service
    coordinator uses this to run tasks of several concurrent sweeps
    against one shared :class:`~repro.store.calcache.PersistentCalibrationCache`;
    hit/miss accounting must then be per-task (see
    ``repro.service.coordinator._SharedCacheView``).
    """
    # Imported lazily: repro.experiments imports this package for its
    # drivers, so a module-level import here would be circular.
    from repro.experiments.runner import default_method_suite, run_suite_cached

    start = time.perf_counter()
    digest = spec_digest(spec)
    bspec = spec.backends[point]

    # One in-memory cache per task: the key structure makes cross-task
    # memory hits impossible (keys embed the trial, and shared-backend
    # trials are co-located in one task), so a longer-lived cache would
    # only retain dead state.  The store tier is what outlives the task.
    if cache is None and spec.reuse_calibration:
        if store_root is not None:
            from repro.store.artifacts import ArtifactStore
            from repro.store.calcache import PersistentCalibrationCache

            cache = PersistentCalibrationCache(
                ArtifactStore(store_root, options=store_options)
            )
        else:
            cache = CalibrationCache()
    if not spec.reuse_calibration:
        cache = None

    records: List[SweepRecord] = []
    backend = None
    for trial in trials:
        noise_tokens: Tuple = ("backend", digest, point)
        cal_scope: Tuple = ("cal", digest, point)
        if not spec.share_backend_across_trials:
            noise_tokens += (trial,)
            cal_scope += (trial,)
        if backend is None or not spec.share_backend_across_trials:
            backend = bspec.build(stable_rng(*noise_tokens))
        for shots in spec.shots:
            for ci, cspec in enumerate(spec.circuits):
                circuit = cspec.build(backend.coupling_map)
                ideal = cspec.ideal_distribution(circuit)
                suite = default_method_suite(
                    backend.coupling_map,
                    rng=stable_rng("suite", digest, point, trial, shots, ci),
                    include=spec.methods,
                    full_max_qubits=spec.full_max_qubits,
                    linear_max_qubits=spec.linear_max_qubits,
                    err_locality=spec.err_locality,
                    jigsaw_subsets=spec.jigsaw_subsets,
                    cmc_k=spec.cmc_k,
                )
                outcome = run_suite_cached(
                    suite,
                    circuit,
                    backend,
                    shots,
                    ideal=ideal,
                    cache=cache,
                    calibration_scope=cal_scope,
                    execution_scope=(digest, point, trial, shots, ci),
                )
                for name in suite.names():
                    res = outcome[name]
                    records.append(
                        SweepRecord(
                            backend_index=point,
                            backend_label=bspec.label,
                            trial=trial,
                            shots=shots,
                            circuit_index=ci,
                            circuit_label=cspec.label,
                            method=name,
                            error=res.error,
                            shots_spent=res.shots_spent,
                            circuits_executed=res.circuits_executed,
                            not_applicable=res.not_applicable,
                            failure=res.failure,
                        )
                    )

    result = TaskOutcome(
        backend_index=point,
        trials=tuple(trials),
        records=records,
        duration=time.perf_counter() - start,
        trace=obs.task_trace_id(obs.sweep_trace_id(spec), point, trials),
    )
    if cache is not None:
        s = cache.stats()
        result.cache_hits = s.hits
        result.cache_misses = s.misses
        result.saved_shots = s.saved_shots
        result.saved_circuits = s.saved_circuits
    return result


def task_payload(
    spec: SweepSpec,
    coord: TaskCoord,
    store_root: Optional[str] = None,
    store_options=None,
) -> dict:
    """One task as a JSON-ready wire assignment.

    This is how task execution decouples from the local pool: the fleet
    coordinator ships this dict over the line-JSON protocol and a remote
    worker rebuilds the exact :func:`execute_task` call with
    :func:`execute_payload`.  Because a task is a pure function of
    ``(spec, coordinates)``, *where* the payload executes — this process,
    a pool worker, a machine across the network — cannot change a single
    bit of its outcome.  ``store_options`` rides along under
    ``"encoding"`` (omitted when ``None``, so pre-1.8 consumers see the
    exact payload shape they always did) purely so remote writes land in
    the same payload encoding the submitting store uses — encodings never
    affect digests or decoded values, only bytes at rest.
    """
    point, trials = coord
    payload = {
        "spec": spec.to_dict(),
        "point": int(point),
        "trials": [int(t) for t in trials],
        "store": store_root,
    }
    if store_options is not None:
        payload["encoding"] = {
            "compact": bool(store_options.compact),
            "density_threshold": float(store_options.density_threshold),
            "compress": bool(store_options.compress),
        }
    return payload


def execute_payload(
    payload: dict, cache: Optional[CalibrationCache] = None
) -> TaskOutcome:
    """Exact inverse of :func:`task_payload` feeding :func:`execute_task`.

    ``cache`` overrides the payload's store-derived cache, exactly as in
    :func:`execute_task` — an in-process fleet worker points it at its own
    live store (process-local backends have no reopenable locator).
    Raises ``ValueError`` on malformed payloads so wire consumers can
    answer a structured error instead of dropping the connection.
    """
    try:
        spec = SweepSpec.from_dict(payload["spec"])
        point = int(payload["point"])
        trials = tuple(int(t) for t in payload["trials"])
        store_root = payload.get("store")
        encoding = payload.get("encoding")
        store_options = None
        if encoding is not None:
            from repro.store.codecs import EncodeOptions

            store_options = EncodeOptions(
                compact=bool(encoding["compact"]),
                density_threshold=float(encoding["density_threshold"]),
                compress=bool(encoding["compress"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed task payload: {exc}") from None
    return execute_task(
        spec, point, trials, store_root, cache=cache, store_options=store_options
    )


# ----------------------------------------------------------------------
# Sessions: opened sweep state shared by the sync and async drivers
# ----------------------------------------------------------------------
@dataclass
class SweepSession:
    """One sweep's opened execution state.

    Produced by :meth:`ParallelSweepRunner.open_session`; holds everything
    the task-dispatch loop needs — replayed outcomes, the pending
    coordinates in execution order (warm-first under a store), the open
    journal, and the reassembly logic.  Both the synchronous
    :meth:`ParallelSweepRunner.run` loop and the asyncio
    :class:`~repro.service.coordinator.SweepCoordinator` drive a session
    the same way: for each pending coordinate, call
    :func:`execute_task` with :meth:`task_args` and hand the outcome to
    :meth:`record`; when every coordinate has an outcome,
    :meth:`assemble` — always under a ``try/finally`` that
    :meth:`close`\\ s the session (releasing the journal's advisory lock).
    """

    spec: SweepSpec
    #: Every task coordinate, in canonical (reassembly) order.
    coords: List[TaskCoord]
    #: Pending coordinates in *execution* order — warm-first when planned.
    pending: List[TaskCoord]
    #: Completed outcomes (journal-replayed ones pre-populated).
    outcomes: Dict[TaskCoord, TaskOutcome]
    workers: int
    plan: Optional["TaskPlan"] = None
    journal: Optional["SweepJournal"] = None
    store_root: Optional[str] = None
    started: float = 0.0
    #: The live store (not just its locator) — what in-process dispatch
    #: hands to tasks when the backend cannot be reopened by locator in
    #: another context (``mem://`` spaces, injected-client ``s3://``).
    store: Optional["ArtifactStore"] = None

    @property
    def store_options(self):
        """The live store's payload-encoding options, for reopen paths.

        A task that reopens ``store_root`` by locator (pool workers, and
        in-process dispatch of cross-process backends) would otherwise
        fall back to the environment's default encoding — correct bytes
        either way, but not the encoding the caller asked this store
        for."""
        return None if self.store is None else self.store.options

    @property
    def total(self) -> int:
        return len(self.coords)

    def task_args(self, coord: TaskCoord) -> Tuple:
        """Positional arguments dispatching ``coord`` to :func:`execute_task`.

        Picklable, so the same tuple feeds an in-process call, a
        ``ProcessPoolExecutor.submit`` and an asyncio ``run_in_executor``.
        """
        point, trials = coord
        return (self.spec, point, trials, self.store_root)

    def task_cache(self) -> Optional[CalibrationCache]:
        """A fresh per-task two-tier cache over the session's *live*
        backend, for in-process dispatch of process-local stores.

        ``None`` on every path where :func:`execute_task` should build
        its own cache from the pickled ``store_root`` (no store, caching
        disabled, or a cross-process backend a worker can reopen).  A
        fresh cache per task keeps hit/miss accounting per-task — the
        same shape a worker-built cache has."""
        if self.store is None or not self.spec.reuse_calibration:
            return None
        if self.store.backend.cross_process:
            return None
        from repro.store.calcache import PersistentCalibrationCache

        return PersistentCalibrationCache(self.store)

    def record(self, coord: TaskCoord, outcome: TaskOutcome) -> int:
        """Journal + retain one completed task; returns the done count.

        Idempotent per coordinate: a duplicate delivery (a fleet task
        re-issued after its worker's lease expired, whose original result
        still arrives) is dropped — first write wins, and by the seeding
        discipline both deliveries carry identical content anyway.  The
        journal append happens *before* the outcome is retained so that a
        transient store failure retried by the caller re-attempts the
        append instead of skipping it as a duplicate.
        """
        if coord in self.outcomes:
            return len(self.outcomes)
        if self.journal is not None:
            self.journal.append_task(outcome)
        self.outcomes[coord] = outcome
        return len(self.outcomes)

    def replay_progress(self, progress: ProgressCallback) -> None:
        """Deliver already-replayed outcomes through the progress channel
        (canonical order), so ``[k/n]`` counts stay truthful on resume."""
        done = 0
        for coord in self.coords:
            if coord in self.outcomes:
                done += 1
                progress(done, self.total, self.outcomes[coord])

    def assemble(self) -> SweepResult:
        """Reassemble the result in canonical task order.

        Execution order (pool completion, warm-first scheduling, async
        interleaving) can never leak into the record list — and hence into
        any downstream accessor — because reassembly always walks
        ``coords``.  Requires every coordinate to have an outcome.
        """
        records: List[SweepRecord] = []
        result = SweepResult(
            spec=self.spec, records=records, workers=self.workers
        )
        for coord in self.coords:
            outcome = self.outcomes[coord]
            records.extend(outcome.records)
            result.cache_hits += outcome.cache_hits
            result.cache_misses += outcome.cache_misses
            result.saved_shots += outcome.saved_shots
            result.saved_circuits += outcome.saved_circuits
        result.wall_time = time.perf_counter() - self.started
        return result

    def close(self) -> None:
        """Release the journal (file handle + advisory lock); idempotent."""
        if self.journal is not None:
            self.journal.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ParallelSweepRunner:
    """Executes sweep specs, serially or over a process pool.

    Parameters
    ----------
    workers:
        ``None``/``0``/``1`` runs in-process (deterministic reference
        path); ``n > 1`` fans tasks out over ``n`` worker processes.
        Results are bit-identical either way — the pool only changes
        wall-clock time.
    progress:
        Optional ``callback(done, total, outcome)`` invoked as tasks
        complete (in completion order, which under a pool is not the
        canonical order; the assembled result always is).
    store:
        Optional :class:`~repro.store.artifacts.ArtifactStore` (or its
        root directory / locator string — ``dir:///path``, ``mem://name``,
        ``s3://bucket/prefix``).  Journals every completed task durably and gives
        each task a persistent second calibration-cache tier — neither of
        which changes any number, only what survives the process.
    resume:
        With ``store``: replay tasks already journaled for this spec
        instead of re-running them.  The assembled result is bit-identical
        to an uninterrupted run (the engine's per-task seed derivation is
        execution-order-free).  Without a store this is an error.
    on_plan:
        Optional callback receiving the store-aware
        :class:`~repro.service.planner.TaskPlan` once it is computed
        (store runs only) — how the CLI reports the
        journaled/warm/cold split without re-scanning the store.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        store: StoreLike = None,
        resume: bool = False,
        on_plan: Optional[PlanCallback] = None,
    ) -> None:
        if resume and store is None:
            raise ValueError("resume=True needs a store to resume from")
        self.workers = workers
        self.progress = progress
        self.store = self._coerce_store(store)
        self.resume = resume
        self.on_plan = on_plan

    @staticmethod
    def _coerce_store(store: StoreLike):
        if store is None:
            return None
        from repro.store.artifacts import ArtifactStore

        if isinstance(store, ArtifactStore):
            return store
        return ArtifactStore(store)

    def effective_workers(
        self, spec: SweepSpec, plan: Optional["TaskPlan"] = None
    ) -> int:
        if self.workers is None or self.workers <= 1:
            return 1
        if self.store is not None and not self.store.backend.cross_process:
            # A pool worker reopening this locator would see a *different*
            # store (an empty mem:// space, a missing injected client):
            # results would still be correct — every stream derives from
            # (seed, coordinates) — but journaling/warm reuse would
            # silently vanish.  Keep such sweeps in-process instead.
            return 1
        requested = max(1, min(int(self.workers), spec.num_tasks))
        if plan is not None:
            # Store-aware sizing: the pool covers the cold remainder in
            # full, warm tasks at a discount (they skip calibration but
            # still execute targets), journaled replay not at all — see
            # TaskPlan.recommended_workers for the policy.
            return plan.recommended_workers(requested)
        return requested

    def open_session(self, spec: SweepSpec) -> SweepSession:
        """Open (plan, journal, replay) a sweep without executing tasks.

        With a store attached this pre-scans artifact availability via the
        :class:`~repro.service.planner.SweepPlanner` (read-only, before
        the journal's advisory lock is taken), orders pending work
        warm-first and narrows the worker count to the cold remainder.
        The caller owns the session: execute its ``pending`` coordinates
        (any order, any executor), then ``assemble()``, and ``close()`` in
        a ``finally``.
        """
        started = time.perf_counter()
        coords = spec.task_coordinates()
        plan = None
        journal = None
        store_root: Optional[str] = None
        if self.store is not None:
            from repro.service.planner import SweepPlanner
            from repro.store.artifacts import store_locator
            from repro.store.journal import SweepJournal

            store_root = store_locator(self.store)
            plan = SweepPlanner(self.store).plan(spec, resume=self.resume)
            journal = SweepJournal.open(self.store, spec, resume=self.resume)
        session = SweepSession(
            spec=spec,
            coords=coords,
            pending=[],
            outcomes={},
            workers=self.effective_workers(spec, plan),
            plan=plan,
            journal=journal,
            store_root=store_root,
            started=started,
            store=self.store,
        )
        # Replay sits under a close() guard: a corrupt-journal ValueError
        # must not leak the advisory lock.
        try:
            if journal is not None and self.resume:
                replayed = journal.completed_outcomes()
                # Only coordinates this spec actually defines count: a
                # journal can hold more (e.g. written by a later version)
                # without poisoning the result.  Insertion order follows
                # the *journal* (not the canonical grid): live recording
                # also appends in journal order, so ``outcomes`` is the
                # row sequence — the service's watch cursors equate event
                # index with journal index on the strength of this.
                defined = set(coords)
                session.outcomes = {
                    c: o for c, o in replayed.items() if c in defined
                }
            order = coords if plan is None else list(plan.execution_order)
            session.pending = [c for c in order if c not in session.outcomes]
            if plan is not None and self.on_plan is not None:
                self.on_plan(plan)
        except BaseException:
            session.close()
            raise
        return session

    def run(self, spec: SweepSpec) -> SweepResult:
        session = self.open_session(spec)
        try:
            if self.progress is not None:
                session.replay_progress(self.progress)
            total = session.total
            if session.workers == 1:
                for coord in list(session.pending):
                    outcome = execute_task(
                        *session.task_args(coord),
                        cache=session.task_cache(),
                        store_options=session.store_options,
                    )
                    done = session.record(coord, outcome)
                    if self.progress is not None:
                        self.progress(done, total, outcome)
            elif session.pending:
                with ProcessPoolExecutor(max_workers=session.workers) as pool:
                    futures = {
                        pool.submit(
                            execute_task,
                            *session.task_args(coord),
                            store_options=session.store_options,
                        ): coord
                        for coord in session.pending
                    }
                    from concurrent.futures import as_completed

                    for future in as_completed(futures):
                        outcome = future.result()
                        done = session.record(futures[future], outcome)
                        if self.progress is not None:
                            self.progress(done, total, outcome)
        finally:
            session.close()
        return session.assemble()


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    store: StoreLike = None,
    resume: bool = False,
    on_plan: Optional[PlanCallback] = None,
) -> SweepResult:
    """One-call convenience: ``ParallelSweepRunner(...).run(spec)``.

    ``store`` (a directory, a ``dir://``/``mem://``/``s3://`` locator, or a
    :class:`~repro.store.artifacts.ArtifactStore`)
    makes the sweep durable: completed tasks are journaled and calibrations
    persist across processes; ``resume=True`` picks up a crashed run
    exactly where it stopped, bit-identical to an uninterrupted one.
    Store runs are scheduled warm-first (persisted calibrations execute
    before cold tasks — same numbers, faster first results); ``on_plan``
    observes the computed journaled/warm/cold split.
    """
    return ParallelSweepRunner(
        workers=workers,
        progress=progress,
        store=store,
        resume=resume,
        on_plan=on_plan,
    ).run(spec)


# ----------------------------------------------------------------------
# Generic ordered parallel map (week-structured drivers)
# ----------------------------------------------------------------------
def map_tasks(
    fn: Callable,
    items: Sequence,
    workers: Optional[int] = None,
) -> List:
    """Apply ``fn`` to each item, serially or over a process pool.

    Results come back in input order regardless of completion order, so a
    driver's output cannot depend on scheduling.  ``fn`` and the items must
    be picklable when ``workers > 1`` (module-level functions + plain
    data).  Items should carry their own derived seeds — ``fn`` must not
    reach for shared randomness.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n = max(1, min(int(workers), len(items)))
    with ProcessPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, items))
