"""Parallel sweep engine with calibration reuse.

This subsystem turns the repo's per-figure experiment loops into one
declarative, parallel, cache-aware pipeline:

* :class:`~repro.pipeline.spec.SweepSpec` — a JSON-serialisable grid over
  backends x circuits x shot budgets x methods x trials;
* :class:`~repro.pipeline.runner.ParallelSweepRunner` /
  :func:`~repro.pipeline.runner.run_sweep` — executes a spec over a
  ``concurrent.futures`` process pool with per-task stable seed
  derivation, so serial and parallel runs are bit-identical;
* :class:`~repro.pipeline.cache.CalibrationCache` — memoizes
  calibration-matrix state per (spec, point, trial, method, budget) so
  repeated sweep cells reuse it instead of re-measuring, without changing
  any method error (see the cache module docs for the argument).

Quick start::

    from repro.pipeline import BackendSpec, SweepSpec, run_sweep

    spec = SweepSpec(
        backends=(BackendSpec(kind="device", name="quito"),
                  BackendSpec(kind="device", name="nairobi")),
        shots=(32000,), trials=3, seed=0, full_max_qubits=5,
    )
    result = run_sweep(spec, workers=4)
    print(result.summary_rows())

The per-figure drivers in :mod:`repro.experiments` are thin adapters over
this engine, and ``repro sweep`` exposes it on the command line.
"""

from repro.pipeline.cache import CalibrationCache, CalibrationRecord
from repro.pipeline.runner import (
    ParallelSweepRunner,
    SweepRecord,
    SweepResult,
    map_tasks,
    run_sweep,
)
from repro.pipeline.spec import BackendSpec, CircuitSpec, SweepSpec

__all__ = [
    "BackendSpec",
    "CircuitSpec",
    "SweepSpec",
    "CalibrationCache",
    "CalibrationRecord",
    "ParallelSweepRunner",
    "SweepRecord",
    "SweepResult",
    "map_tasks",
    "run_sweep",
]
