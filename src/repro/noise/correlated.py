"""Correlated measurement-error channels (paper Fig. 10).

Fig. 10 builds its simulated benchmarks from four channel shapes over a
four-qubit register — single-qubit (uncorrelated), two-qubit (all pairs),
three-qubit (triplets), and the flip-all channel — plus the corresponding
state-dependent variants.  The constructors here build the *local*
column-stochastic matrices; embedding them onto device qubits is the job of
:class:`~repro.noise.channels.MeasurementErrorChannel`.

A channel is *correlated* in the paper's sense (Fig. 2) when
``P_err(A ⊗ B) > P_err(A) · P_err(B)`` — these constructors make the joint
flip probability explicit rather than deriving it from marginals, so any
``joint > p_a * p_b`` is genuinely correlated.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability

__all__ = [
    "correlated_pair_channel",
    "correlated_triplet_channel",
    "flip_all_channel",
    "state_dependent_channel",
]


def correlated_pair_channel(joint_flip: float) -> np.ndarray:
    """Two-qubit channel that flips *both* bits together with ``joint_flip``.

    The 4x4 column-stochastic matrix is ``(1-p) I + p (X⊗X permutation)``.
    Because the marginal flip probability of each qubit is also ``p``, the
    joint exceeds the product (``p > p²`` for p < 1), i.e. the error is
    correlated per Fig. 2.
    """
    p = check_probability(joint_flip, "joint_flip")
    m = (1.0 - p) * np.eye(4)
    # X⊗X permutation: 00<->11, 01<->10.
    perm = np.zeros((4, 4))
    perm[0b11, 0b00] = perm[0b00, 0b11] = 1.0
    perm[0b10, 0b01] = perm[0b01, 0b10] = 1.0
    return m + p * perm


def correlated_triplet_channel(joint_flip: float) -> np.ndarray:
    """Three-qubit channel flipping all three bits together."""
    p = check_probability(joint_flip, "joint_flip")
    dim = 8
    m = (1.0 - p) * np.eye(dim)
    perm = np.zeros((dim, dim))
    for s in range(dim):
        perm[s ^ 0b111, s] = 1.0
    return m + p * perm


def flip_all_channel(num_qubits: int, joint_flip: float) -> np.ndarray:
    """The Fig. 10 "four qubit" channel generalised: flip every bit.

    ``(1-p) I + p P`` where ``P`` maps each state to its bitwise complement.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    p = check_probability(joint_flip, "joint_flip")
    dim = 1 << num_qubits
    m = (1.0 - p) * np.eye(dim)
    perm = np.zeros((dim, dim))
    all_ones = dim - 1
    for s in range(dim):
        perm[s ^ all_ones, s] = 1.0
    return m + p * perm


def state_dependent_channel(num_qubits: int, p_decay: float, source: int | None = None) -> np.ndarray:
    """A multi-qubit *state-dependent* channel (right panel of Fig. 10).

    Only the all-ones state decays: with probability ``p_decay`` the state
    ``|1...1>`` is read out as ``source`` (default: ``|0...0>``), every other
    state is read faithfully.  For ``num_qubits = 4`` this reproduces the
    paper's "only one four-qubit state-dependent measurement error" Hinton
    diagram — a single off-diagonal entry.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    p = check_probability(p_decay, "p_decay")
    dim = 1 << num_qubits
    target = dim - 1
    dst = 0 if source is None else int(source)
    if not (0 <= dst < dim):
        raise ValueError(f"source state {dst} out of range")
    if dst == target:
        raise ValueError("decay destination cannot equal the all-ones state")
    m = np.eye(dim)
    m[target, target] = 1.0 - p
    m[dst, target] = p
    return m
