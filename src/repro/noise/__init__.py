"""Noise channels and device noise models.

The paper studies two classes of measurement error (§II-C/D):

* **state-dependent** readout errors — per-qubit asymmetric confusion
  matrices, with P(1→0) > P(0→1) on superconducting devices;
* **correlated** readout errors — multi-qubit channels whose joint error
  probability exceeds the product of the marginals, physically localised on
  the device.

:class:`~repro.noise.channels.MeasurementErrorChannel` composes local
channels of both kinds into a full measurement error model, which backends
apply to ideal output distributions (the paper's §V-A methodology);
:mod:`repro.noise.models` bundles gate noise with a measurement channel, and
:mod:`repro.noise.drift` perturbs models over time for the Fig. 1 / ERR
stability experiments.
"""

from repro.noise.readout import (
    ReadoutError,
    confusion_matrix,
    random_readout_errors,
)
from repro.noise.correlated import (
    correlated_pair_channel,
    flip_all_channel,
    correlated_triplet_channel,
    state_dependent_channel,
)
from repro.noise.channels import LocalChannel, MeasurementErrorChannel
from repro.noise.models import NoiseModel, random_device_noise
from repro.noise.drift import drift_noise_model

__all__ = [
    "ReadoutError",
    "confusion_matrix",
    "random_readout_errors",
    "correlated_pair_channel",
    "correlated_triplet_channel",
    "flip_all_channel",
    "state_dependent_channel",
    "LocalChannel",
    "MeasurementErrorChannel",
    "NoiseModel",
    "random_device_noise",
    "drift_noise_model",
]
