"""Full device noise models: gate noise + measurement-error channel.

The evaluation's simulated devices (§V-A) combine:

* one-qubit depolarising gate error (0.1%),
* two-qubit depolarising gate error (1%),
* per-qubit readout error in 2-8%, state-dependent (both |0>→|1> and
  |1>→|0> drawn independently),
* optionally, injected correlated measurement channels — coupling-map
  aligned (the regime where bare CMC shines) or off-map (the Nairobi-like
  regime where CMC-ERR is needed),

with T1 = T2 = infinity (no idle decay).  :func:`random_device_noise` draws
such a model for a given coupling map; its correlation placement knob is
what the Table II device profiles are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.noise.channels import LocalChannel, MeasurementErrorChannel
from repro.noise.correlated import correlated_pair_channel
from repro.noise.readout import ReadoutError, random_readout_errors
from repro.topology.coupling_map import CouplingMap, Edge
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_probability

__all__ = ["NoiseModel", "random_device_noise", "CorrelationPlacement"]

CorrelationPlacement = Literal["coupling", "off_coupling", "random", "none"]


@dataclass
class NoiseModel:
    """Gate + measurement noise for a simulated device.

    Attributes
    ----------
    num_qubits:
        Register size.
    error_1q / error_2q:
        Depolarising probabilities per one-/two-qubit gate.
    measurement_channel:
        The readout error channel applied to output distributions.
    correlated_edges:
        The qubit pairs carrying injected correlated measurement errors
        (book-keeping for experiments; the channels themselves live inside
        ``measurement_channel``).
    """

    num_qubits: int
    error_1q: float = 0.0
    error_2q: float = 0.0
    measurement_channel: MeasurementErrorChannel = None  # type: ignore[assignment]
    correlated_edges: Tuple[Edge, ...] = ()
    readout_errors: Tuple[ReadoutError, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        check_probability(self.error_1q, "error_1q")
        check_probability(self.error_2q, "error_2q")
        if self.measurement_channel is None:
            self.measurement_channel = MeasurementErrorChannel.ideal(self.num_qubits)
        if self.measurement_channel.num_qubits != self.num_qubits:
            raise ValueError("measurement channel register size mismatch")
        self.correlated_edges = tuple(
            (min(a, b), max(a, b)) for a, b in self.correlated_edges
        )

    @property
    def has_gate_noise(self) -> bool:
        return self.error_1q > 0 or self.error_2q > 0

    @property
    def has_measurement_noise(self) -> bool:
        return not self.measurement_channel.is_trivial

    @classmethod
    def ideal(cls, num_qubits: int) -> "NoiseModel":
        return cls(num_qubits=num_qubits, name="ideal")

    @classmethod
    def measurement_only(
        cls, channel: MeasurementErrorChannel, name: str = ""
    ) -> "NoiseModel":
        return cls(
            num_qubits=channel.num_qubits,
            measurement_channel=channel,
            name=name or "measurement-only",
        )


def _off_coupling_pairs(
    coupling_map: CouplingMap, max_distance: int = 2
) -> List[Edge]:
    """Qubit pairs that are local (distance <= max_distance) but NOT edges.

    These host the Nairobi-style correlations that are "local but
    non-coupling map aligned" (§IV-D / Table II discussion).  On very small
    or complete graphs there may be none; callers fall back to edges.
    """
    dm = coupling_map.distance_matrix()
    edge_set = set(coupling_map.edges)
    out = []
    n = coupling_map.num_qubits
    for a in range(n):
        for b in range(a + 1, n):
            if (a, b) not in edge_set and 2 <= dm[a, b] <= max_distance:
                out.append((a, b))
    return out


def random_device_noise(
    coupling_map: CouplingMap,
    *,
    error_1q: float = 0.001,
    error_2q: float = 0.01,
    readout_low: float = 0.02,
    readout_high: float = 0.08,
    correlation_placement: CorrelationPlacement = "none",
    num_correlated: Optional[int] = None,
    correlation_strength: Tuple[float, float] = (0.02, 0.06),
    rng: RandomState = None,
    name: str = "",
) -> NoiseModel:
    """Draw a full device noise model for ``coupling_map``.

    Parameters
    ----------
    correlation_placement:
        Where injected correlated pair-channels live:

        * ``"none"`` — purely tensored readout noise (the statevector
          regime of Figs. 13-15: "biased but not correlated");
        * ``"coupling"`` — on randomly chosen coupling-map edges
          (Quito/Lima-like; bare CMC can see these);
        * ``"off_coupling"`` — on local *non*-edges (Nairobi-like; only
          ERR profiling finds these);
        * ``"random"`` — mixture of both.
    num_correlated:
        How many correlated pairs to inject (default: about one per three
        qubits, at least one).
    correlation_strength:
        Joint-flip probability range for each injected pair channel.
    """
    gen = ensure_rng(rng)
    n = coupling_map.num_qubits
    readout = random_readout_errors(
        n, low=readout_low, high=readout_high, biased=True, rng=gen
    )
    channel = MeasurementErrorChannel.from_readout_errors(readout)
    correlated: List[Edge] = []
    if correlation_placement != "none":
        count = num_correlated if num_correlated is not None else max(1, n // 3)
        on_edges = list(coupling_map.edges)
        off_edges = _off_coupling_pairs(coupling_map)
        if correlation_placement == "coupling":
            pool = on_edges
        elif correlation_placement == "off_coupling":
            pool = off_edges or on_edges  # tiny devices may have no off-pairs
        else:  # random
            pool = on_edges + off_edges
        count = min(count, len(pool))
        chosen = gen.choice(len(pool), size=count, replace=False) if count else []
        lo, hi = correlation_strength
        for i in np.atleast_1d(chosen):
            a, b = pool[int(i)]
            strength = float(gen.uniform(lo, hi))
            channel.add_local((a, b), correlated_pair_channel(strength))
            correlated.append((a, b))
    return NoiseModel(
        num_qubits=n,
        error_1q=error_1q,
        error_2q=error_2q,
        measurement_channel=channel,
        correlated_edges=tuple(sorted(correlated)),
        readout_errors=tuple(readout),
        name=name or f"random-noise-{coupling_map.name}",
    )
