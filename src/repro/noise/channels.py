"""Composable measurement-error channels.

A :class:`MeasurementErrorChannel` is an ordered sequence of
:class:`LocalChannel` factors — local column-stochastic matrices bound to
device qubit subsets — applied in sequence to an outcome distribution.  This
is exactly the object the paper's §V-A simulation methodology needs
("we then apply the constructed measurement error channel to this output
vector") while never materialising a global ``2^n x 2^n`` matrix unless
explicitly asked (:meth:`MeasurementErrorChannel.to_matrix`, used for ground
truth in tests and Hinton diagrams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.noise.readout import ReadoutError
from repro.simulator.probability import apply_local_stochastic, marginalize_probabilities
from repro.utils.linalg import is_column_stochastic
from repro.utils.validation import check_qubit_indices

__all__ = ["LocalChannel", "MeasurementErrorChannel"]


@dataclass(frozen=True)
class LocalChannel:
    """A local stochastic matrix bound to an ordered tuple of device qubits.

    ``matrix`` is ``2^m x 2^m`` column-stochastic with ``qubits[0]`` as the
    low bit of its index space.
    """

    qubits: Tuple[int, ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        qs = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qs)
        m = np.asarray(self.matrix, dtype=float)
        object.__setattr__(self, "matrix", m)
        if len(set(qs)) != len(qs) or not qs:
            raise ValueError(f"invalid qubit tuple {qs}")
        if m.shape != (1 << len(qs), 1 << len(qs)):
            raise ValueError(
                f"matrix shape {m.shape} does not act on {len(qs)} qubit(s)"
            )
        if not is_column_stochastic(m, atol=1e-6):
            raise ValueError("local channel matrix must be column-stochastic")

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)


class MeasurementErrorChannel:
    """Ordered composition of local stochastic channels on a register.

    Factors are applied first-to-last: the channel is
    ``M = M_k · ... · M_2 · M_1`` acting on probability column vectors.

    Parameters
    ----------
    num_qubits:
        Size of the device register the channel acts on.
    factors:
        Local channels, applied in the given order.
    """

    def __init__(self, num_qubits: int, factors: Iterable[LocalChannel] = ()) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self._factors: List[LocalChannel] = []
        for f in factors:
            self.add(f)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, factor: LocalChannel) -> "MeasurementErrorChannel":
        """Append a factor (applied after all existing factors)."""
        check_qubit_indices(factor.qubits, self.num_qubits)
        self._factors.append(factor)
        return self

    def add_local(self, qubits: Sequence[int], matrix: np.ndarray) -> "MeasurementErrorChannel":
        """Append a local stochastic matrix bound to ``qubits``."""
        return self.add(LocalChannel(tuple(qubits), matrix))

    def add_readout(self, qubit: int, error: ReadoutError) -> "MeasurementErrorChannel":
        """Attach a per-qubit confusion matrix."""
        return self.add(LocalChannel((qubit,), error.matrix))

    @classmethod
    def from_readout_errors(
        cls, errors: Sequence[ReadoutError]
    ) -> "MeasurementErrorChannel":
        """Tensored per-qubit channel — the *linear* noise of Figs. 13-15."""
        channel = cls(len(errors))
        for q, err in enumerate(errors):
            if not err.is_trivial():
                channel.add_readout(q, err)
        return channel

    @classmethod
    def ideal(cls, num_qubits: int) -> "MeasurementErrorChannel":
        return cls(num_qubits)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def factors(self) -> Tuple[LocalChannel, ...]:
        return tuple(self._factors)

    @property
    def is_trivial(self) -> bool:
        return not self._factors

    def touched_qubits(self) -> Tuple[int, ...]:
        """Sorted set of qubits any factor acts on."""
        out = set()
        for f in self._factors:
            out.update(f.qubits)
        return tuple(sorted(out))

    def is_tensored(self) -> bool:
        """True iff every factor is single-qubit (no correlations)."""
        return all(f.num_qubits == 1 for f in self._factors)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, probabilities: np.ndarray) -> np.ndarray:
        """Apply the channel to a dense distribution over the full register.

        Also accepts a ``(B, 2^n)`` stack of distributions and pushes every
        row through the channel in the same per-factor contraction (see
        :mod:`repro.simulator.probability`).
        """
        v = np.asarray(probabilities, dtype=float)
        if v.ndim not in (1, 2) or v.shape[-1] != 1 << self.num_qubits:
            raise ValueError(
                f"distribution of shape {v.shape} does not match "
                f"{self.num_qubits}-qubit register"
            )
        for f in self._factors:
            v = apply_local_stochastic(v, f.matrix, f.qubits, self.num_qubits)
        return v

    def apply_marginal(
        self, probabilities: np.ndarray, measured_qubits: Sequence[int]
    ) -> np.ndarray:
        """Apply the channel when only ``measured_qubits`` are read out.

        The input distribution is indexed over ``measured_qubits``
        (little-endian); a ``(B, 2^k)`` stack is processed row-wise in one
        pass.  Only factors whose qubits are **all** measured
        participate: readout errors — including correlated readout
        crosstalk — are caused by the measurement pulses themselves, so a
        qubit that is not read out contributes no error.  This is the
        physical mechanism that makes small measurement registers cleaner
        and gives JIGSAW's measurement subsetting its advantage (§III-D).
        """
        measured = check_qubit_indices(measured_qubits, self.num_qubits)
        v = np.asarray(probabilities, dtype=float)
        if v.ndim not in (1, 2) or v.shape[-1] != 1 << len(measured):
            raise ValueError(
                f"distribution of shape {v.shape} does not match "
                f"{len(measured)} measured qubits"
            )
        if len(measured) == self.num_qubits and measured == tuple(range(self.num_qubits)):
            return self.apply(v)
        measured_set = set(measured)
        position_of = {q: k for k, q in enumerate(measured)}
        out = v
        for f in self._factors:
            if not set(f.qubits) <= measured_set:
                continue
            positions = tuple(position_of[q] for q in f.qubits)
            out = apply_local_stochastic(out, f.matrix, positions, len(measured))
        return out

    # ------------------------------------------------------------------
    # Dense views (testing / Hinton diagrams / ground truth)
    # ------------------------------------------------------------------
    def to_matrix(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Materialise the channel as a dense stochastic matrix.

        With ``qubits`` given, returns the marginal channel on that subset
        under a **full-register readout**: spectators are pinned to |0>,
        every factor applies (all qubits are measured, so all crosstalk
        fires), and the result is marginalised onto the subset.  This is
        the ground truth that CMC's per-edge calibration circuits — which
        measure the whole device — estimate.
        """
        qs = tuple(range(self.num_qubits)) if qubits is None else tuple(qubits)
        dim = 1 << len(qs)
        if len(qs) > 14 or self.num_qubits > 14:
            raise ValueError("refusing to materialise a matrix over >14 qubits")
        out = np.empty((dim, dim))
        full_dim = 1 << self.num_qubits
        for prepared in range(dim):
            full = np.zeros(full_dim)
            idx = 0
            for k, q in enumerate(qs):
                idx |= ((prepared >> k) & 1) << q
            full[idx] = 1.0
            full = self.apply(full)
            out[:, prepared] = marginalize_probabilities(full, qs, self.num_qubits)
        return out

    def __repr__(self) -> str:
        return (
            f"MeasurementErrorChannel(num_qubits={self.num_qubits}, "
            f"factors={len(self._factors)})"
        )
