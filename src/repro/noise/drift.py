"""Temporal drift of device noise models.

The paper averages its Fig. 1 correlation maps "over three weeks" and
reports that ERR characterisations "are stable for a given device on the
order of weeks between significant recalibrations" (§VII-A).  Real devices
drift: error magnitudes jitter between calibration cycles while the
*structure* (which pairs are correlated) persists.

:func:`drift_noise_model` implements exactly that: multiplicative jitter on
every error rate, with the correlated-edge set and channel shapes kept fixed.
The ERR-stability experiment builds week-indexed snapshots of a base model
and checks that the error coupling maps recovered from each snapshot agree.

Drift is also *local* — between significant recalibrations only a few
qubits or edges move.  Passing ``qubits=`` / ``edges=`` restricts the
jitter to exactly that subset: the selected per-qubit readout errors and
per-edge correlated factors re-draw, every other factor is carried over
as the *same object* (bit-identical matrices), and the global gate-error
rates hold still.  That is the constructible locality the calibration DAG
scheduler's drift detection keys on (:mod:`repro.calgraph.drift`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.noise.channels import LocalChannel, MeasurementErrorChannel
from repro.noise.models import NoiseModel
from repro.noise.readout import ReadoutError
from repro.utils.linalg import column_normalize
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["drift_noise_model", "jitter_channel_matrix"]


def _jitter(rate: float, scale: float, rng: np.random.Generator) -> float:
    """Multiplicative log-normal-ish jitter, clamped to [0, 0.5]."""
    factor = float(np.exp(rng.normal(0.0, scale)))
    return float(min(max(rate * factor, 0.0), 0.5))


def jitter_channel_matrix(
    matrix: np.ndarray, scale: float, rng: np.random.Generator
) -> np.ndarray:
    """Jitter the off-diagonal (error) mass of a stochastic matrix.

    Each column's error mass is scaled by an independent multiplicative
    factor (clamped so the diagonal stays dominant), preserving the channel
    *shape* — which entries are non-zero — while the magnitude drifts.
    """
    m = np.asarray(matrix, dtype=float).copy()
    dim = m.shape[0]
    for col in range(dim):
        err = 1.0 - m[col, col]
        if err <= 0.0:
            continue
        new_err = _jitter(err, scale, rng)
        ratio = new_err / err
        for row in range(dim):
            if row != col:
                m[row, col] *= ratio
        m[col, col] = 1.0 - new_err
    return column_normalize(np.clip(m, 0.0, None))


def drift_noise_model(
    model: NoiseModel,
    *,
    scale: float = 0.15,
    week: int = 0,
    rng: RandomState = None,
    qubits: Optional[Iterable[int]] = None,
    edges: Optional[Iterable[Sequence[int]]] = None,
) -> NoiseModel:
    """A drifted snapshot of ``model``.

    Parameters
    ----------
    scale:
        Log-scale of the multiplicative jitter (0.15 ≈ ±15% per cycle,
        matching week-to-week IBM calibration variation).
    week:
        Convenience label mixed into the jitter stream so that snapshots for
        different weeks differ deterministically under the same seed.
    qubits / edges:
        When given, jitter is *localised*: only the selected qubits'
        readout errors and the selected edges' correlated channel factors
        drift; everything else (including the global gate-error rates) is
        carried over bit-identically.  Selections that touch nothing raise
        ``ValueError`` — a "drift" that drifts nothing is a test bug, not
        a stable device.
    """
    gen = ensure_rng(rng)
    if week:
        # Deterministically decorrelate snapshots taken for different weeks.
        gen = np.random.default_rng(gen.integers(0, 2**63 - 1) + week)
    if qubits is not None or edges is not None:
        return _drift_localised(
            model, scale=scale, week=week, gen=gen, qubits=qubits, edges=edges
        )
    new_readout = tuple(
        ReadoutError(_jitter(e.p01, scale, gen), _jitter(e.p10, scale, gen))
        for e in model.readout_errors
    )
    channel = MeasurementErrorChannel(model.num_qubits)
    for factor in model.measurement_channel.factors:
        if factor.num_qubits == 1 and factor.qubits[0] < len(new_readout):
            # Single-qubit factors are the per-qubit readout errors; reuse
            # the jittered ReadoutError for the matching qubit.
            channel.add_readout(factor.qubits[0], new_readout[factor.qubits[0]])
        else:
            channel.add(
                LocalChannel(
                    factor.qubits, jitter_channel_matrix(factor.matrix, scale, gen)
                )
            )
    return NoiseModel(
        num_qubits=model.num_qubits,
        error_1q=_jitter(model.error_1q, scale, gen),
        error_2q=_jitter(model.error_2q, scale, gen),
        measurement_channel=channel,
        correlated_edges=model.correlated_edges,
        readout_errors=new_readout,
        name=f"{model.name}-week{week}",
    )


def _drift_localised(
    model: NoiseModel,
    *,
    scale: float,
    week: int,
    gen: np.random.Generator,
    qubits: Optional[Iterable[int]],
    edges: Optional[Iterable[Sequence[int]]],
) -> NoiseModel:
    """Jitter only the selected qubits' readout and edges' correlations."""
    sel_qubits = sorted({int(q) for q in (qubits or ())})
    for q in sel_qubits:
        if not 0 <= q < model.num_qubits:
            raise ValueError(
                f"drift qubit {q} out of range for a "
                f"{model.num_qubits}-qubit model"
            )
    sel_edges = {tuple(sorted(int(q) for q in e)) for e in (edges or ())}
    for e in sel_edges:
        if len(e) < 2 or not all(0 <= q < model.num_qubits for q in e):
            raise ValueError(f"drift edge {e} out of range or degenerate")

    # Re-draw the selected per-qubit readout errors (in qubit order, so the
    # jitter stream is deterministic regardless of selection spelling).
    new_readout = list(model.readout_errors)
    for q in sel_qubits:
        if q < len(new_readout):
            err = new_readout[q]
            new_readout[q] = ReadoutError(
                _jitter(err.p01, scale, gen), _jitter(err.p10, scale, gen)
            )

    touched_qubits: set = set()
    touched_edges: set = set()
    channel = MeasurementErrorChannel(model.num_qubits)
    for factor in model.measurement_channel.factors:
        footprint = tuple(sorted(factor.qubits))
        if factor.num_qubits == 1 and footprint[0] in sel_qubits:
            q = footprint[0]
            touched_qubits.add(q)
            if q < len(new_readout):
                channel.add_readout(q, new_readout[q])
            else:
                channel.add(
                    LocalChannel(
                        factor.qubits,
                        jitter_channel_matrix(factor.matrix, scale, gen),
                    )
                )
        elif factor.num_qubits > 1 and footprint in sel_edges:
            touched_edges.add(footprint)
            channel.add(
                LocalChannel(
                    factor.qubits, jitter_channel_matrix(factor.matrix, scale, gen)
                )
            )
        else:
            # Untouched factors carry over as the same objects: bit-exact.
            channel.add(factor)

    missed_qubits = [q for q in sel_qubits if q not in touched_qubits]
    missed_edges = sorted(sel_edges - touched_edges)
    if missed_qubits or missed_edges:
        raise ValueError(
            "localised drift selected noise that does not exist: "
            f"qubits {missed_qubits} / edges {missed_edges} match no "
            "channel factor in this model"
        )
    return NoiseModel(
        num_qubits=model.num_qubits,
        error_1q=model.error_1q,
        error_2q=model.error_2q,
        measurement_channel=channel,
        correlated_edges=model.correlated_edges,
        readout_errors=tuple(new_readout),
        name=f"{model.name}-week{week}",
    )
