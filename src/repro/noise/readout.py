"""Per-qubit (state-dependent) readout errors.

A readout error on one qubit is a column-stochastic 2x2 confusion matrix

.. math::

    C = \\begin{pmatrix} 1 - p_{01} & p_{10} \\\\ p_{01} & 1 - p_{10} \\end{pmatrix}

where ``p01 = P(read 1 | prepared 0)`` and ``p10 = P(read 0 | prepared 1)``.
On superconducting devices the |1> state decays during the long measurement
window, so ``p10 > p01`` — the *state-dependent* bias of paper Fig. 3.  The
evaluation draws both rates uniformly from 2-8% (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_probability

__all__ = ["ReadoutError", "confusion_matrix", "random_readout_errors"]


def confusion_matrix(p01: float, p10: float) -> np.ndarray:
    """Column-stochastic confusion matrix ``C[observed, prepared]``."""
    p01 = check_probability(p01, "p01")
    p10 = check_probability(p10, "p10")
    return np.array([[1.0 - p01, p10], [p01, 1.0 - p10]])


@dataclass(frozen=True)
class ReadoutError:
    """Asymmetric single-qubit readout error.

    Attributes
    ----------
    p01:
        Probability of reading 1 when the qubit is in |0> (excitation).
    p10:
        Probability of reading 0 when the qubit is in |1> (decay — the
        dominant term on superconducting hardware).
    """

    p01: float
    p10: float

    def __post_init__(self) -> None:
        check_probability(self.p01, "p01")
        check_probability(self.p10, "p10")

    @property
    def matrix(self) -> np.ndarray:
        return confusion_matrix(self.p01, self.p10)

    @property
    def bias(self) -> float:
        """State dependence: ``p10 - p01`` (positive = |1> decays faster)."""
        return self.p10 - self.p01

    @property
    def average_rate(self) -> float:
        return 0.5 * (self.p01 + self.p10)

    def is_trivial(self) -> bool:
        """True iff both error rates are exactly zero."""
        return self.p01 == 0.0 and self.p10 == 0.0

    @classmethod
    def ideal(cls) -> "ReadoutError":
        return cls(0.0, 0.0)

    @classmethod
    def symmetric(cls, p: float) -> "ReadoutError":
        return cls(p, p)


def random_readout_errors(
    num_qubits: int,
    low: float = 0.02,
    high: float = 0.08,
    biased: bool = True,
    rng: RandomState = None,
) -> List[ReadoutError]:
    """Draw per-qubit readout errors uniformly from ``[low, high]`` (§V-A).

    With ``biased=True`` (the superconducting regime) ``p10`` is forced to
    be the larger of the two draws so that every qubit exhibits the decay
    bias of Fig. 3; with ``biased=False`` the two rates are independent.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    if not (0.0 <= low <= high <= 1.0):
        raise ValueError(f"invalid rate range [{low}, {high}]")
    gen = ensure_rng(rng)
    errors = []
    for _ in range(num_qubits):
        a, b = gen.uniform(low, high, size=2)
        if biased:
            p01, p10 = min(a, b), max(a, b)
        else:
            p01, p10 = a, b
        errors.append(ReadoutError(float(p01), float(p10)))
    return errors
