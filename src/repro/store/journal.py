"""Append-only, crash-safe sweep journals — on any store backend.

A :class:`SweepJournal` records every completed sweep task (one
:class:`~repro.pipeline.runner.TaskOutcome`) as one JSONL line, durably
appended before the engine moves on.  Because the engine derives every
stochastic stream from ``(spec seed, grid coordinates)`` — never from
execution order — a journaled task's records are exactly what a fresh run
of that task would produce, so ``run_sweep(spec, store=..., resume=True)``
can splice journaled outcomes into the canonical task order and the
assembled :class:`~repro.pipeline.runner.SweepResult` is **bit-identical**
to an uninterrupted run (pinned in ``tests/test_store_resume.py``).

One journal per (store, spec identity): the stream lives at backend key
``journals/<digest16>.jsonl`` where the digest hashes the spec's
*scientific* fields — like the engine's stream namespace, the
``reuse_calibration`` policy is excluded, because caching provably does not
change results and a crashed cold run may be resumed warm (or vice versa).

Line 1 is a header carrying the full spec, so a journal is self-describing
(and ``resume`` can verify the caller's spec matches instead of silently
splicing a different experiment's records).  Crash artefacts are confined
to the final line: a torn write is detected by JSON parse failure and
dropped, losing at most the one task that was in flight.

All I/O goes through :class:`~repro.store.backends.StoreBackend` stream
primitives (``append_line`` / ``read_from`` / ``truncate``), so the same
journal logic — including :meth:`SweepJournal.follow` tailing — runs
unchanged over a directory, an in-memory space or an object store.  The
advisory lock is a **backend-held lease**: an object at
``journals/<digest16>.lock`` created with a conditional put (its content
names the holder pid), reclaimed via conditional delete when the holder
is provably dead.  On local stores this is byte-compatible with the
pre-backend pid lock file.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro import obs
from repro._version import __version__
from repro.store.backends import LocalDirBackend, StoreBackend
from repro.store.codecs import strict_dumps
from repro.store.faults import TransientStoreError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a pipeline cycle
    from repro.pipeline.runner import TaskOutcome
    from repro.pipeline.spec import SweepSpec
    from repro.store.artifacts import ArtifactStore

__all__ = [
    "SweepJournal",
    "journal_spec_digest",
    "journal_key",
    "task_entry",
    "outcome_from_entry",
]

MAGIC = "repro-sweep-journal/1"

#: Header probe size: headers are one spec dict (~hundreds of bytes);
#: 256 KiB of headroom means the bounded read virtually never falls back
#: to fetching a whole multi-MB journal just to check line 1.
_HEADER_PROBE_BYTES = 256 * 1024

TaskCoord = Tuple[int, Tuple[int, ...]]


def task_entry(outcome: "TaskOutcome") -> dict:
    """The journal-line dict for one completed task.

    Factored out of :meth:`SweepJournal.append_task` because the service
    coordinator publishes exactly this entry to live watchers the moment
    the task is journaled — a watcher stream and a journal replay must be
    the same rows, field for field.  :func:`outcome_from_entry` is the
    inverse; keep them together.
    """
    return {
        "kind": "task",
        "point": outcome.backend_index,
        "trials": list(outcome.trials),
        "records": [rec.to_dict() for rec in outcome.records],
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "saved_shots": outcome.saved_shots,
        "saved_circuits": outcome.saved_circuits,
        "duration": outcome.duration,
        # The task's correlation id (`repro trace` stitches fleet sweeps
        # from journal rows alone).  Deterministic in (spec, coordinate)
        # — NOT telemetry state — so rows stay byte-identical with
        # telemetry on or off, local or fleet-executed.
        "trace": outcome.trace,
    }


def outcome_from_entry(entry: dict) -> "TaskOutcome":
    """Exact inverse of :func:`task_entry` — the one place that parses a
    task row back to a live object, shared by journal replay and by wire
    consumers of streamed rows (``repro submit --follow``)."""
    from repro.pipeline.runner import SweepRecord, TaskOutcome

    return TaskOutcome(
        backend_index=int(entry["point"]),
        trials=tuple(int(t) for t in entry["trials"]),
        records=[SweepRecord.from_dict(r) for r in entry["records"]],
        cache_hits=int(entry["cache_hits"]),
        cache_misses=int(entry["cache_misses"]),
        saved_shots=int(entry["saved_shots"]),
        saved_circuits=int(entry["saved_circuits"]),
        duration=float(entry["duration"]),
        # pre-1.7 journals have no trace field; they still replay
        trace=str(entry.get("trace", "")),
    )


def _identity_fields(spec: "SweepSpec") -> dict:
    data = spec.to_dict()
    data.pop("reuse_calibration", None)  # caching policy is not identity
    return data


def journal_spec_digest(spec: "SweepSpec") -> str:
    """Stable hex digest of a spec's scientific identity (16 chars)."""
    text = strict_dumps(
        _identity_fields(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def journal_key(spec: "SweepSpec") -> str:
    """The backend key of ``spec``'s journal stream."""
    return f"journals/{journal_spec_digest(spec)}.jsonl"


class SweepJournal:
    """One sweep's task-completion log, bound to a spec and a backend key.

    Constructed either from ``(backend, key)`` — the store-agnostic form
    — or, backward-compatibly, from a filesystem path (which binds a
    :class:`~repro.store.backends.LocalDirBackend` at the parent
    directory; ``.path`` then points at the real file, as it always has).
    """

    def __init__(
        self,
        ref: Union[os.PathLike, str, Tuple[StoreBackend, str]],
        spec: "SweepSpec",
    ) -> None:
        if isinstance(ref, tuple):
            self._backend, self._key = ref
        else:
            path = pathlib.Path(ref)
            self._backend = LocalDirBackend(path.parent)
            self._key = path.name
        self.spec = spec
        self._locked = False
        self._lease_payload: Optional[bytes] = None
        self._appended = False
        self._header: Optional[dict] = None
        #: Coordinates already durably journaled through *this* stream —
        #: lazily seeded from a replay on the first append, so a re-issued
        #: task whose original append already landed is never written twice.
        self._journaled: Optional[set] = None

    @property
    def path(self) -> pathlib.Path:
        """Local journals only: the on-disk file (tests poke it raw)."""
        if not isinstance(self._backend, LocalDirBackend):
            raise TypeError(
                f"journal {self._key} lives on a "
                f"{self._backend.scheme}:// backend; it has no file path"
            )
        return self._backend._path(self._key)

    def describe(self) -> str:
        """Human-facing name for error messages, any backend."""
        if isinstance(self._backend, LocalDirBackend):
            return str(self.path)
        return f"{self._backend.locator}/{self._key}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_spec(cls, store: "ArtifactStore", spec: "SweepSpec") -> "SweepJournal":
        """The (unopened, unlocked) journal for ``spec`` inside ``store``
        — read-only consumers (the planner's pre-scan, ``follow()``
        watchers) bind here without touching the lease."""
        return cls((store.backend, journal_key(spec)), spec)

    @classmethod
    def open(
        cls, store: "ArtifactStore", spec: "SweepSpec", resume: bool = False
    ) -> "SweepJournal":
        """The journal for ``spec`` inside ``store``.

        ``resume=False`` starts fresh (an existing journal for the same
        spec is truncated — it described a previous, completed or abandoned
        run).  ``resume=True`` keeps existing entries so
        :meth:`completed_outcomes` can replay them; a header whose spec
        does not match raises rather than mixing experiments.

        A backend-held lease (``journals/<digest16>.lock``, holder pid
        inside) guards the stream: two live processes journaling the same
        spec into one store would interleave writes and the fresh-run
        truncation would destroy the other's durable progress, so the
        second open raises instead.  Leases left by dead processes (hard
        kills) are reclaimed with a conditional delete.
        """
        journal = cls.for_spec(store, spec)
        journal._acquire_lock()
        try:
            if resume and journal._read_header() is not None:
                journal._verify_header()
            else:
                # No stream, or a crash during header creation left it
                # empty / torn before any task could be journaled —
                # nothing to protect, start fresh rather than demanding a
                # manual delete.
                journal._write_header()
        except BaseException:
            journal._release_lock()
            raise
        return journal

    # ------------------------------------------------------------------
    # Advisory lease
    # ------------------------------------------------------------------
    @property
    def _lock_key(self) -> str:
        return self._key[: -len(".jsonl")] + ".lock" \
            if self._key.endswith(".jsonl") else self._key + ".lock"

    def _acquire_lock(self) -> None:
        # The holder pid is the lease content, published atomically by a
        # conditional put — no window where a racer reads an empty lease
        # and "reclaims" a live one.
        payload = str(os.getpid()).encode("utf-8")
        while True:
            if self._backend.put_if_absent(self._lock_key, payload):
                self._locked = True
                self._lease_payload = payload
                return
            current = self._backend.get(self._lock_key)
            if current is None:
                continue  # released between the failed put and the read
            try:
                holder = int(current.decode("utf-8").strip())
            except (UnicodeDecodeError, ValueError):
                holder = None
            if holder is None:
                # published leases always hold a pid; an unreadable one
                # means external interference
                raise ValueError(
                    f"lock {self._lock_key} in {self._backend.locator} is "
                    f"unreadable; remove it manually if no sweep is running"
                )
            if self._pid_alive(holder):
                raise ValueError(
                    f"journal {self.describe()} is in use by process "
                    f"{holder}; two sweeps must not share one spec's "
                    f"journal concurrently"
                )
            # Stale lease from a hard-killed run.  Conditional delete: of
            # N racers exactly one removes it and everyone loops back to
            # contend for a fresh lease; nobody can delete a lease another
            # racer just published (its content differs).
            self._backend.delete_if_equals(self._lock_key, current)

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        # Our own pid counts as alive: a second same-process writer (a
        # thread, a nested call) would interleave/truncate the first one's
        # journal exactly like a foreign process would.  Sequential
        # re-entry is fine because every open is paired with close() —
        # the runner does so in a finally.
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # alive, owned by someone else
            return True
        return True

    def _release_lock(self) -> None:
        if self._locked:
            # Conditional: only our own lease may be removed.  Should a
            # pathological race ever hand the slot to another holder,
            # releasing must not evict them on top of it.  Transients are
            # retried *here* rather than left to the caller: a release
            # lost to a flaky link would strand a lease naming our own
            # (live) pid — which no later open can ever reclaim.
            if self._lease_payload is not None:
                for attempt in range(50):
                    try:
                        self._backend.delete_if_equals(
                            self._lock_key, self._lease_payload
                        )
                        break
                    except TransientStoreError:
                        if attempt == 48:
                            raise
                        time.sleep(0.002)
            self._locked = False
            self._lease_payload = None

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    def _read_header(self) -> Optional[dict]:
        """Line 1 parsed, or ``None`` when missing/torn.

        A successful parse is cached on the instance: the header is
        immutable for the life of an open journal (only
        :meth:`_write_header` replaces it, and it refreshes the cache),
        so ``open(resume=True)``'s read-then-verify sequence costs one
        stream fetch, not two — which matters on object stores, where
        any read is a whole-object transfer."""
        if self._header is not None:
            return self._header
        res = self._backend.read_from(self._key, 0, limit=_HEADER_PROBE_BYTES)
        if res is None:
            return None
        data, size = res
        if b"\n" not in data and len(data) < size:
            # a header line longer than the probe (giant spec): take the
            # full read rather than misjudging a torn header — which
            # resume would answer by truncating real progress
            res = self._backend.read_from(self._key, 0)
            if res is None:
                return None
            data, _ = res
        first = data.split(b"\n", 1)[0]
        if not first.strip():
            return None
        try:
            header = json.loads(first.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        self._header = header
        return header

    def _write_header(self) -> None:
        header = {
            "kind": "header",
            "magic": MAGIC,
            "version": __version__,
            "digest": journal_spec_digest(self.spec),
            "spec": self.spec.to_dict(),
        }
        self._backend.put_atomic(
            self._key,
            strict_dumps(header, sort_keys=True).encode("utf-8") + b"\n",
        )
        self._header = header

    def _verify_header(self) -> None:
        header = self._read_header()  # only line 1 — no full scan
        if header is None:
            raise ValueError(f"journal {self.describe()} is empty (no header)")
        if header.get("kind") != "header" or header.get("magic") != MAGIC:
            raise ValueError(
                f"{self.describe()} is not a repro sweep journal"
            )
        if header.get("version") != __version__:
            # The bit-identical promise only holds within one engine
            # version: releases have changed numbers under identical seeds
            # before (e.g. the trajectory-noise stream reorder), and a
            # half-replayed, half-recomputed grid would match neither run.
            raise ValueError(
                f"journal {self.describe()} was written by repro "
                f"{header.get('version')!r} but this is {__version__}; "
                f"results are only bit-identical within one version — "
                f"re-run without --resume to start fresh"
            )
        from repro.pipeline.spec import SweepSpec

        recorded = SweepSpec.from_dict(header["spec"])
        if _identity_fields(recorded) != _identity_fields(self.spec):
            raise ValueError(
                f"journal {self.describe()} was written by a different "
                f"spec; refusing to splice its tasks into this sweep"
            )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_task(self, outcome: "TaskOutcome") -> bool:
        """Durably record one completed task (backend-durable append).

        Idempotent per task coordinate: appending an outcome whose
        ``(point, trials)`` is already in the stream is a no-op returning
        ``False``.  This closes the fleet's double-append window — a
        re-issued task whose *original* worker's append landed after its
        lease expired must not journal a second row (the content would be
        identical by the seeding discipline, but "zero duplicate rows" is
        the exactly-once contract the fleet harness pins).  The dedup set
        is seeded from a one-time replay on the first append, so it also
        covers rows written by a previous process under ``resume``.
        """
        coord = (outcome.backend_index, outcome.trials)
        if self._journaled is None:
            self._journaled = set(self.completed_outcomes())
        if coord in self._journaled:
            return False
        entry = task_entry(outcome)
        if not self._appended:
            # Only the first append can land after a foreign crash's torn
            # tail; our own appends always leave a newline-terminated
            # stream, so one repair per open is enough (and keeps appends
            # O(entry), not O(journal)).
            self._trim_torn_tail()
            self._appended = True
        self._backend.append_line(
            self._key,
            strict_dumps(entry, sort_keys=True).encode("utf-8") + b"\n",
        )
        self._journaled.add(coord)
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.counter(
                "repro_journal_appends_total",
                "Task rows durably appended to sweep journals",
            ).inc()
        return True

    def _trim_torn_tail(self) -> None:
        """Repair a newline-less final line before appending.

        A hard kill can die mid-append; replay (`_raw_lines`) keeps the
        fragment if it parses as JSON and drops it otherwise.  Appending
        straight after it would fuse the fragment and the new entry into
        one corrupt mid-file line, so the stream is repaired to match what
        replay saw: a *complete* entry that merely lost its newline gets
        the newline (it was replayed as done — truncating it would silently
        un-journal a finished task), a genuinely torn fragment is truncated
        away.
        """
        st = self._backend.stat(self._key)
        if st is None or st.size == 0:
            return
        # Probe the tail, not the stream: almost always it ends in a
        # newline and one bounded read settles it.  Only a fragment that
        # starts before the probe window forces the full read.
        start = max(0, st.size - _HEADER_PROBE_BYTES)
        res = self._backend.read_from(self._key, start)
        if res is None:
            return
        data, size = res
        if not data or data.endswith(b"\n"):
            return
        nl = data.rfind(b"\n")
        if nl == -1 and start > 0:
            res = self._backend.read_from(self._key, 0)
            if res is None:
                return
            data, size = res
            nl = data.rfind(b"\n")
        fragment = data[nl + 1:]
        try:
            json.loads(fragment.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._backend.truncate(self._key, size - len(fragment))
        else:
            self._backend.append_line(self._key, b"\n")

    def close(self) -> None:
        self._release_lock()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _raw_lines(self) -> List[dict]:
        """Parsed journal lines; a torn final line (crash) is dropped."""
        out: List[dict] = []
        res = self._backend.read_from(self._key, 0)
        if res is None:
            return out
        lines = res[0].splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                out.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append
                raise ValueError(
                    f"journal {self.describe()} is corrupt at line {i + 1}"
                ) from None
        return out

    def completed_outcomes(self) -> Dict[TaskCoord, "TaskOutcome"]:
        """Journaled tasks as live TaskOutcome objects, keyed by task
        coordinate.  Duplicate entries for one coordinate (a crash between
        append and process exit, then a re-run) collapse to the last —
        the content is identical either way, by the seeding discipline."""
        out: Dict[TaskCoord, "TaskOutcome"] = {}
        for entry in self._raw_lines():
            if entry.get("kind") != "task":
                continue
            outcome = outcome_from_entry(entry)
            out[(outcome.backend_index, outcome.trials)] = outcome
        return out

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def follow(self, poll_interval: float = 0.05, stop=None):
        """Yield task entries as they land: replay, then tail new appends.

        A watcher gets every completed row already in the journal (in
        journal order — the writer's completion order) and then blocks,
        polling the backend, until new rows are appended.  Only lines
        terminated by a newline are ever parsed, so a torn in-flight
        append is naturally withheld until the writer completes (or
        repairs) it — a follower can never see a fragment, and never sees
        a row twice: delivery is exactly-once by byte offset.

        ``stop``: optional zero-argument callable; when it returns true
        the iterator drains whatever complete rows exist and returns.
        Without it, follow a live sweep from another thread/process and
        break out of the ``for`` when done.  A journal that does not
        exist yet (sweep still queued) is polled for, not an error.
        """
        import time as _time

        offset = 0
        while True:
            new_rows, offset = self._complete_rows_from(offset)
            for entry in new_rows:
                if entry.get("kind") == "task":
                    yield entry
            if stop is not None and stop():
                # one final drain so rows appended while the caller was
                # deciding to stop are not lost
                new_rows, offset = self._complete_rows_from(offset)
                for entry in new_rows:
                    if entry.get("kind") == "task":
                        yield entry
                return
            if not new_rows:
                _time.sleep(poll_interval)

    def _complete_rows_from(self, offset: int):
        """Parsed newline-terminated rows after ``offset``; new offset.

        The offset only ever advances past complete lines, so a torn tail
        is re-read on the next poll.  A fresh-run truncation (header
        rewrite) shrinks the stream below the offset; the follower resets
        to the start rather than silently misparsing mid-line bytes.
        """
        rows: List[dict] = []
        # Stat first: an idle poll (no new bytes) costs one metadata
        # check, not a read — on object stores every read is a
        # whole-object GET, and follow() polls many times a second.
        st = self._backend.stat(self._key)
        if st is None:
            return rows, 0
        if st.size == offset:
            return rows, offset
        res = self._backend.read_from(self._key, offset)
        if res is None:
            return rows, 0
        data, size = res
        if size < offset:  # journal truncated/rewritten under us
            offset = 0
            res = self._backend.read_from(self._key, 0)
            if res is None:
                return rows, 0
            data, size = res
        consumed = data.rfind(b"\n") + 1
        if consumed == 0:
            return rows, offset
        for line in data[:consumed].splitlines():
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                # mid-file corruption is replay's problem to report; a
                # follower just skips what it cannot parse
                continue
        return rows, offset + consumed
