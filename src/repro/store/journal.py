"""Append-only, crash-safe sweep journals.

A :class:`SweepJournal` records every completed sweep task (one
:class:`~repro.pipeline.runner.TaskOutcome`) as one JSONL line, flushed and
fsynced before the engine moves on.  Because the engine derives every
stochastic stream from ``(spec seed, grid coordinates)`` — never from
execution order — a journaled task's records are exactly what a fresh run
of that task would produce, so ``run_sweep(spec, store=..., resume=True)``
can splice journaled outcomes into the canonical task order and the
assembled :class:`~repro.pipeline.runner.SweepResult` is **bit-identical**
to an uninterrupted run (pinned in ``tests/test_store_resume.py``).

One journal file per (store, spec identity): the file lives at
``<store>/journals/<digest16>.jsonl`` where the digest hashes the spec's
*scientific* fields — like the engine's stream namespace, the
``reuse_calibration`` policy is excluded, because caching provably does not
change results and a crashed cold run may be resumed warm (or vice versa).

Line 1 is a header carrying the full spec, so a journal is self-describing
(and ``resume`` can verify the caller's spec matches instead of silently
splicing a different experiment's records).  Crash artefacts are confined
to the final line: a torn write is detected by JSON parse failure and
dropped, losing at most the one task that was in flight.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro._version import __version__

if TYPE_CHECKING:  # imported lazily at runtime to avoid a pipeline cycle
    from repro.pipeline.runner import TaskOutcome
    from repro.pipeline.spec import SweepSpec
    from repro.store.artifacts import ArtifactStore

__all__ = [
    "SweepJournal",
    "journal_spec_digest",
    "task_entry",
    "outcome_from_entry",
]

MAGIC = "repro-sweep-journal/1"

TaskCoord = Tuple[int, Tuple[int, ...]]


def task_entry(outcome: "TaskOutcome") -> dict:
    """The journal-line dict for one completed task.

    Factored out of :meth:`SweepJournal.append_task` because the service
    coordinator publishes exactly this entry to live watchers the moment
    the task is journaled — a watcher stream and a journal replay must be
    the same rows, field for field.  :func:`outcome_from_entry` is the
    inverse; keep them together.
    """
    return {
        "kind": "task",
        "point": outcome.backend_index,
        "trials": list(outcome.trials),
        "records": [rec.to_dict() for rec in outcome.records],
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "saved_shots": outcome.saved_shots,
        "saved_circuits": outcome.saved_circuits,
        "duration": outcome.duration,
    }


def outcome_from_entry(entry: dict) -> "TaskOutcome":
    """Exact inverse of :func:`task_entry` — the one place that parses a
    task row back to a live object, shared by journal replay and by wire
    consumers of streamed rows (``repro submit --follow``)."""
    from repro.pipeline.runner import SweepRecord, TaskOutcome

    return TaskOutcome(
        backend_index=int(entry["point"]),
        trials=tuple(int(t) for t in entry["trials"]),
        records=[SweepRecord.from_dict(r) for r in entry["records"]],
        cache_hits=int(entry["cache_hits"]),
        cache_misses=int(entry["cache_misses"]),
        saved_shots=int(entry["saved_shots"]),
        saved_circuits=int(entry["saved_circuits"]),
        duration=float(entry["duration"]),
    )


def _identity_fields(spec: "SweepSpec") -> dict:
    data = spec.to_dict()
    data.pop("reuse_calibration", None)  # caching policy is not identity
    return data


def journal_spec_digest(spec: "SweepSpec") -> str:
    """Stable hex digest of a spec's scientific identity (16 chars)."""
    text = json.dumps(
        _identity_fields(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class SweepJournal:
    """One sweep's task-completion log, bound to a spec and a path."""

    def __init__(self, path: os.PathLike, spec: "SweepSpec") -> None:
        self.path = pathlib.Path(path)
        self.spec = spec
        self._fh = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, store: "ArtifactStore", spec: "SweepSpec", resume: bool = False
    ) -> "SweepJournal":
        """The journal for ``spec`` inside ``store``.

        ``resume=False`` starts fresh (an existing journal for the same
        spec is truncated — it described a previous, completed or abandoned
        run).  ``resume=True`` keeps existing entries so
        :meth:`completed_outcomes` can replay them; a header whose spec
        does not match raises rather than mixing experiments.

        An advisory lock (``<journal>.lock``, holder pid inside) guards the
        file: two live processes journaling the same spec into one store
        would interleave writes and the fresh-run truncation would destroy
        the other's durable progress, so the second open raises instead.
        Locks left by dead processes (hard kills) are reclaimed.
        """
        path = store.journals_dir / f"{journal_spec_digest(spec)}.jsonl"
        journal = cls(path, spec)
        journal._acquire_lock()
        try:
            if resume and path.is_file() and journal._read_header() is not None:
                journal._verify_header()
            else:
                # No file, or a crash during header creation left it empty /
                # torn before any task could be journaled — nothing to
                # protect, start fresh rather than demanding a manual delete.
                journal._write_header()
        except BaseException:
            journal._release_lock()
            raise
        return journal

    # ------------------------------------------------------------------
    # Advisory locking
    # ------------------------------------------------------------------
    @property
    def _lock_path(self) -> pathlib.Path:
        return self.path.with_suffix(".lock")

    def _acquire_lock(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # The pid is written to a private temp file first and published with
        # os.link (atomic, fails-if-exists), so a visible lock always
        # carries its holder — no window where a racer reads an empty lock
        # and "reclaims" a live one.
        import tempfile

        fd, tmp = tempfile.mkstemp(dir=self.path.parent, prefix=".lock.")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
                fh.flush()
                os.fsync(fh.fileno())
            while True:
                try:
                    os.link(tmp, self._lock_path)
                    self._locked = True
                    return
                except FileExistsError:
                    pass
                holder = self._lock_holder()
                if holder is None:
                    # published locks always hold a pid; an unreadable one
                    # means external interference — or it vanished between
                    # the failed link and the read, so just try again
                    if self._lock_path.exists():
                        raise ValueError(
                            f"lock {self._lock_path} is unreadable; remove "
                            f"it manually if no sweep is running"
                        )
                    continue
                if self._pid_alive(holder):
                    raise ValueError(
                        f"journal {self.path} is in use by process {holder}; "
                        f"two sweeps must not share one spec's journal "
                        f"concurrently"
                    )
                # Stale lock from a hard-killed run.  Claim it by rename —
                # atomic, so of N racers exactly one wins and the losers
                # loop back to contend for the fresh lock; nobody can
                # unlink a lock another racer just published.
                claimed = f"{self._lock_path}.stale.{os.getpid()}"
                try:
                    os.rename(self._lock_path, claimed)
                except FileNotFoundError:
                    continue  # another racer claimed it first
                os.unlink(claimed)
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    def _lock_holder(self):
        try:
            text = self._lock_path.read_text().strip()
            return int(text) if text else None
        except (FileNotFoundError, ValueError):
            return None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        # Our own pid counts as alive: a second same-process writer (a
        # thread, a nested call) would interleave/truncate the first one's
        # journal exactly like a foreign process would.  Sequential
        # re-entry is fine because every open is paired with close() —
        # the runner does so in a finally.
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # alive, owned by someone else
            return True
        return True

    def _release_lock(self) -> None:
        if getattr(self, "_locked", False):
            try:
                os.unlink(self._lock_path)
            except FileNotFoundError:
                pass
            self._locked = False

    def _read_header(self):
        """Line 1 parsed, or ``None`` when missing/torn (no full scan)."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                first = fh.readline()
        except FileNotFoundError:
            return None
        if not first.strip():
            return None
        try:
            return json.loads(first)
        except json.JSONDecodeError:
            return None

    def _write_header(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "magic": MAGIC,
            "version": __version__,
            "digest": journal_spec_digest(self.spec),
            "spec": self.spec.to_dict(),
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _verify_header(self) -> None:
        header = self._read_header()  # only line 1 — no full-file parse
        if header is None:
            raise ValueError(f"journal {self.path} is empty (no header)")
        if header.get("kind") != "header" or header.get("magic") != MAGIC:
            raise ValueError(f"{self.path} is not a repro sweep journal")
        if header.get("version") != __version__:
            # The bit-identical promise only holds within one engine
            # version: releases have changed numbers under identical seeds
            # before (e.g. the trajectory-noise stream reorder), and a
            # half-replayed, half-recomputed grid would match neither run.
            raise ValueError(
                f"journal {self.path} was written by repro "
                f"{header.get('version')!r} but this is {__version__}; "
                f"results are only bit-identical within one version — "
                f"re-run without --resume to start fresh"
            )
        from repro.pipeline.spec import SweepSpec

        recorded = SweepSpec.from_dict(header["spec"])
        if _identity_fields(recorded) != _identity_fields(self.spec):
            raise ValueError(
                f"journal {self.path} was written by a different spec; "
                f"refusing to splice its tasks into this sweep"
            )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_task(self, outcome: "TaskOutcome") -> None:
        """Durably record one completed task (flush + fsync per entry)."""
        entry = task_entry(outcome)
        if self._fh is None:
            self._trim_torn_tail()
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _trim_torn_tail(self) -> None:
        """Repair a newline-less final line before appending.

        A hard kill can die mid-append; replay (`_raw_lines`) keeps the
        fragment if it parses as JSON and drops it otherwise.  Appending
        straight after it would fuse the fragment and the new entry into
        one corrupt mid-file line, so the file is repaired to match what
        replay saw: a *complete* entry that merely lost its newline gets
        the newline (it was replayed as done — truncating it would silently
        un-journal a finished task), a genuinely torn fragment is truncated
        away.
        """
        try:
            with open(self.path, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) == b"\n":
                    return
                fh.seek(0)
                data = fh.read()
                fragment = data[data.rfind(b"\n") + 1:]
                try:
                    json.loads(fragment.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    fh.truncate(len(data) - len(fragment))
                else:
                    fh.write(b"\n")
        except FileNotFoundError:
            pass

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._release_lock()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _raw_lines(self) -> List[dict]:
        """Parsed journal lines; a torn final line (crash) is dropped."""
        out: List[dict] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return out
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append
                raise ValueError(
                    f"journal {self.path} is corrupt at line {i + 1}"
                ) from None
        return out

    def completed_outcomes(self) -> Dict[TaskCoord, "TaskOutcome"]:
        """Journaled tasks as live TaskOutcome objects, keyed by task
        coordinate.  Duplicate entries for one coordinate (a crash between
        append and process exit, then a re-run) collapse to the last —
        the content is identical either way, by the seeding discipline."""
        out: Dict[TaskCoord, "TaskOutcome"] = {}
        for entry in self._raw_lines():
            if entry.get("kind") != "task":
                continue
            outcome = outcome_from_entry(entry)
            out[(outcome.backend_index, outcome.trials)] = outcome
        return out

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def follow(self, poll_interval: float = 0.05, stop=None):
        """Yield task entries as they land: replay, then tail new appends.

        A watcher gets every completed row already in the journal (in
        journal order — the writer's completion order) and then blocks,
        polling the file, until new rows are appended.  Only lines
        terminated by a newline are ever parsed, so a torn in-flight
        append is naturally withheld until the writer completes (or
        repairs) it — a follower can never see a fragment, and never sees
        a row twice: delivery is exactly-once by byte offset.

        ``stop``: optional zero-argument callable; when it returns true
        the iterator drains whatever complete rows exist and returns.
        Without it, follow a live sweep from another thread/process and
        break out of the ``for`` when done.  A journal file that does not
        exist yet (sweep still queued) is polled for, not an error.
        """
        import time as _time

        offset = 0
        while True:
            new_rows, offset = self._complete_rows_from(offset)
            for entry in new_rows:
                if entry.get("kind") == "task":
                    yield entry
            if stop is not None and stop():
                # one final drain so rows appended while the caller was
                # deciding to stop are not lost
                new_rows, offset = self._complete_rows_from(offset)
                for entry in new_rows:
                    if entry.get("kind") == "task":
                        yield entry
                return
            if not new_rows:
                _time.sleep(poll_interval)

    def _complete_rows_from(self, offset: int):
        """Parsed newline-terminated rows after ``offset``; new offset.

        The offset only ever advances past complete lines, so a torn tail
        is re-read on the next poll.  A fresh-run truncation (header
        rewrite) shrinks the file below the offset; the follower resets to
        the start rather than silently misparsing mid-line bytes.
        """
        rows = []
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size < offset:
                    offset = 0  # journal truncated/rewritten under us
                fh.seek(offset)
                data = fh.read()
        except FileNotFoundError:
            return rows, 0
        consumed = data.rfind(b"\n") + 1
        if consumed == 0:
            return rows, offset
        for line in data[:consumed].splitlines():
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                # mid-file corruption is replay's problem to report; a
                # follower just skips what it cannot parse
                continue
        return rows, offset + consumed
