"""Content-addressed, on-disk artifact store.

An :class:`ArtifactStore` is a directory of immutable artifacts addressed
by the SHA-256 of a *canonical JSON key* — the same canonicalisation
(sorted keys, minimal separators) for every writer, so two processes that
describe the same logical object compute the same address and the second
write is a no-op overwrite with identical bytes.

Layout (all under the store root)::

    objects/<hh>/<digest>.json   key + metadata + encoded structure
    objects/<hh>/<digest>.npz    array payloads (only when there are any)
    journals/<digest16>.jsonl    sweep journals (see repro.store.journal)

Writes are crash-safe: payloads go to a temporary file in the destination
directory and are published with ``os.replace`` (atomic on POSIX), arrays
first and the ``.json`` record last — the JSON record is the commit marker,
so a reader can never observe a record whose arrays are missing or
half-written.  Concurrent writers of the same key race benignly: both
produce identical content and ``os.replace`` is last-writer-wins.

Values are encoded through :mod:`repro.store.codecs`, so calibration
matrices, mitigator states, coupling maps and nested tuple-keyed dicts all
round-trip bit-identically (`.npz` members are lossless binary).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Union

import numpy as np

from repro._version import __version__
from repro.store.codecs import decode, encode

__all__ = ["ArtifactStore", "ArtifactInfo", "canonical_key_digest", "store_root"]

PathLike = Union[str, os.PathLike]


def store_root(store: Union["ArtifactStore", PathLike]) -> str:
    """Directory root of ``store`` — a live :class:`ArtifactStore` or a
    path — as a plain string (picklable into worker processes).

    The one place that knows ``ArtifactStore.root`` is the attribute to
    read: duck-typing on ``.root`` is a trap, because ``pathlib.Path``
    also exposes ``.root`` (the filesystem anchor, e.g. ``"/"``).
    """
    if isinstance(store, ArtifactStore):
        return str(store.root)
    return os.fspath(store)


def canonical_key_digest(key: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``key``.

    ``key`` must be JSON-serialisable after codec encoding (no arrays —
    keys are identities, not payloads).  Canonical form sorts object keys
    — including non-string-keyed (kdict) entries, whose pairs the codec
    keeps in insertion order for payload fidelity — and strips whitespace,
    so logically equal keys hash equally no matter how the dict was built.
    """
    arrays: Dict[str, np.ndarray] = {}
    encoded = encode(key, arrays)
    if arrays:
        raise TypeError("artifact keys must not contain arrays")
    text = json.dumps(
        _sorted_kdicts(encoded), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _sorted_kdicts(node: Any) -> Any:
    """Order kdict item pairs canonically (by their JSON form).

    ``json.dumps(sort_keys=True)`` sorts object keys but cannot reorder a
    kdict's ``items`` *list* — insertion order would leak into the digest.
    """
    if isinstance(node, list):
        return [_sorted_kdicts(v) for v in node]
    if isinstance(node, dict):
        out = {k: _sorted_kdicts(v) for k, v in node.items()}
        if node.get("__repro__") == "kdict":
            out["items"] = sorted(
                out["items"], key=lambda kv: json.dumps(kv[0], sort_keys=True)
            )
        return out
    return node


@dataclass(frozen=True)
class ArtifactInfo:
    """One stored artifact's metadata (as listed by :meth:`ArtifactStore.entries`)."""

    digest: str
    kind: str
    created: float
    version: str
    size_bytes: int
    has_arrays: bool
    key: dict


class ArtifactStore:
    """Content-addressed store rooted at a directory (created on demand)."""

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root)
        self.objects_dir = self.root / "objects"
        self.journals_dir = self.root / "journals"

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _paths(self, digest: str) -> tuple:
        bucket = self.objects_dir / digest[:2]
        return bucket / f"{digest}.json", bucket / f"{digest}.npz"

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------
    def put(self, key: dict, payload: Any) -> str:
        """Persist ``payload`` under ``key``; returns the content digest.

        Overwriting an existing digest is allowed (and produces identical
        bytes, since the payload is a pure function of the key for every
        producer in this repo).
        """
        digest = canonical_key_digest(key)
        json_path, npz_path = self._paths(digest)
        json_path.parent.mkdir(parents=True, exist_ok=True)

        arrays: Dict[str, np.ndarray] = {}
        structure = encode(payload, arrays)
        record = {
            "key": encode(key, {}),
            "kind": key.get("kind", "?") if isinstance(key, dict) else "?",
            "version": __version__,
            "created": time.time(),
            "payload": structure,
            "arrays": sorted(arrays),
        }
        if arrays:
            self._atomic_write(
                npz_path, lambda fh: np.savez(fh, **arrays)
            )
        self._atomic_write(
            json_path,
            lambda fh: fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
                    "utf-8"
                )
            ),
        )
        return digest

    def get(self, key: dict, default: Any = None) -> Any:
        """Load the payload stored under ``key`` (``default`` if absent)."""
        digest = canonical_key_digest(key)
        record = self._read_record(digest)
        if record is None:
            return default
        try:
            return self._decode_record(record, digest)
        except FileNotFoundError:
            # a delete raced us between the record read and the array load
            # (delete removes .json first, but we may have read it earlier);
            # the artifact is simply gone — report a miss, not a crash
            return default

    def get_by_digest(self, digest: str) -> Any:
        """Load a payload by its content digest (KeyError if absent)."""
        record = self._read_record(digest)
        if record is None:
            raise KeyError(f"no artifact {digest!r} in {self.root}")
        try:
            return self._decode_record(record, digest)
        except FileNotFoundError:
            raise KeyError(f"no artifact {digest!r} in {self.root}") from None

    def contains(self, key: dict) -> bool:
        json_path, _ = self._paths(canonical_key_digest(key))
        return json_path.is_file()

    def __contains__(self, key: dict) -> bool:
        return self.contains(key)

    def _read_record(self, digest: str) -> Optional[dict]:
        json_path, _ = self._paths(digest)
        try:
            return json.loads(json_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None

    def _decode_record(self, record: dict, digest: str) -> Any:
        arrays: Dict[str, np.ndarray] = {}
        if record.get("arrays"):
            _, npz_path = self._paths(digest)
            with np.load(npz_path) as npz:
                arrays = {name: npz[name] for name in npz.files}
        return decode(record["payload"], arrays)

    @staticmethod
    def _atomic_write(path: pathlib.Path, writer) -> None:
        """Write via a same-directory temp file + atomic rename."""
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                writer(fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Introspection / maintenance (the `repro store` CLI surface)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[ArtifactInfo]:
        """All stored artifacts, sorted by digest (stable listings)."""
        if not self.objects_dir.is_dir():
            return
        for json_path in sorted(self.objects_dir.glob("*/*.json")):
            digest = json_path.stem
            record = self._read_record(digest)
            if record is None:  # raced with a delete
                continue
            _, npz_path = self._paths(digest)
            try:
                size = json_path.stat().st_size
            except FileNotFoundError:  # raced with a delete after the read
                continue
            has_arrays = bool(record.get("arrays"))
            if has_arrays:
                try:
                    size += npz_path.stat().st_size
                except FileNotFoundError:
                    pass
            yield ArtifactInfo(
                digest=digest,
                kind=str(record.get("kind", "?")),
                created=float(record.get("created", 0.0)),
                version=str(record.get("version", "?")),
                size_bytes=size,
                has_arrays=has_arrays,
                key=decode(record.get("key", {}), {}),
            )

    def delete(self, digest: str) -> int:
        """Remove one artifact; returns bytes freed (JSON record first,
        so a concurrent reader sees either the full artifact or none)."""
        json_path, npz_path = self._paths(digest)
        freed = 0
        for path in (json_path, npz_path):
            try:
                size = path.stat().st_size
                path.unlink()
                freed += size
            except FileNotFoundError:
                pass
        return freed

    #: A ``.tmp`` file younger than this may belong to a live writer (a
    #: write takes milliseconds; an hour of margin makes gc safe to run
    #: beside an active sweep — the "benign race" promise above must hold
    #: for maintenance too, since gc cannot tell crashed from in-flight).
    TMP_GRACE_SECONDS = 3600.0

    def gc(
        self,
        older_than_days: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Garbage-collect: drop abandoned temp files (crashed writers,
        after a safety grace period) always, and — when ``older_than_days``
        is given — every artifact whose record is older than that many days.

        ``dry_run=True`` reports the same counts and byte totals without
        touching the store, so the deletion policy can be audited first
        (``repro store gc --dry-run``).  The report of a dry run and the
        following real run agree unless the store changed in between.

        Returns ``{"removed": count, "freed_bytes": total}``.
        """
        removed = 0
        freed = 0
        if self.objects_dir.is_dir():
            tmp_cutoff = time.time() - self.TMP_GRACE_SECONDS
            for tmp in self.objects_dir.glob("*/.*.tmp"):
                try:
                    stat = tmp.stat()
                    if stat.st_mtime >= tmp_cutoff:
                        continue  # possibly a live writer's file
                    if not dry_run:
                        tmp.unlink()
                except FileNotFoundError:
                    continue  # the writer published or cleaned up first
                freed += stat.st_size
                removed += 1
            if older_than_days is not None:
                cutoff = time.time() - float(older_than_days) * 86400.0
                for info in list(self.entries()):
                    if info.created < cutoff:
                        if dry_run:
                            freed += info.size_bytes
                        else:
                            freed += self.delete(info.digest)
                        removed += 1
        return {"removed": removed, "freed_bytes": freed}
