"""Content-addressed artifact store over a pluggable transport backend.

An :class:`ArtifactStore` holds immutable artifacts addressed by the
SHA-256 of a *canonical JSON key* — the same canonicalisation (sorted
keys, minimal separators) for every writer, so two processes that
describe the same logical object compute the same address and the second
write is a no-op overwrite with identical bytes.

The store no longer knows about directories: all I/O goes through a
:class:`~repro.store.backends.StoreBackend`, selected by a URL-style
locator (``dir:///path`` — or any plain path — ``mem://name``,
``s3://bucket/prefix``; see :mod:`repro.store.locator`).  Two artifact
layouts, chosen by the backend's capabilities:

**File-shaped backends** (``dir``, ``mem``)::

    objects/<hh>/<digest>.json   key + metadata + encoded structure
    objects/<hh>/<digest>.npz    array payloads (only when there are any)
    journals/<digest16>.jsonl    sweep journals (see repro.store.journal)

Arrays publish first and the ``.json`` record last — the JSON record is
the commit marker, so a reader can never observe a record whose arrays
are missing or half-written.  On disk this is byte-for-byte the layout
(and the tmp-file + ``os.replace`` crash safety) the store has always
had: existing store directories keep working.

**Packing backends** (``s3``-style single-key blobs)::

    objects/<hh>/<digest>.pack   record + arrays in ONE object

One object per artifact, committed by a *conditional put* (the pack is
its own commit marker): because the payload is a pure function of the
key for every producer in this repo, a lost race simply means identical
content is already committed.  GC is a prefix listing.

Concurrent writers of the same key race benignly either way.  Values are
encoded through :mod:`repro.store.codecs`, so calibration matrices,
mitigator states, coupling maps and nested tuple-keyed dicts all
round-trip bit-identically (array payloads are lossless binary).

**Payload encodings** — since 1.8 a store writes *compact* payloads by
default (:class:`~repro.store.codecs.EncodeOptions`): near-identity
calibration matrices become sparse deviation-cell lists, npz members are
zlib-compressed, and packed objects use the v2 container (``RPK2``) with
a compressed record block.  ``compact=False`` (or
``REPRO_STORE_COMPACT=0``) reproduces the pre-1.8 bytes exactly.  Keys —
and therefore digests — always hash the dense canonical form, so the
same logical artifact has the same address under either encoding;
records carry their dense-equivalent ``logical_bytes`` so listings can
show encoded-vs-logical sizes, and :meth:`ArtifactStore.repack`
migrates a store between encodings in place.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import struct
import time
import zlib
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro._version import __version__
from repro.store.backends import StoreBackend, open_backend
from repro.store.codecs import (
    DENSE_OPTIONS,
    EncodeOptions,
    decode,
    encode,
    strict_dumps,
)
from repro.store.locator import parse_store_locator

__all__ = [
    "ArtifactStore",
    "ArtifactInfo",
    "canonical_key_digest",
    "store_root",
    "store_locator",
]

PathLike = Union[str, os.PathLike]

#: Packed-artifact magic + header: b"RPAK" | u32 record length | record
#: JSON | npz bytes.  Version bumps get a new magic, not a silent skew.
_PACK_MAGIC = b"RPAK"

#: The v2 (compact) container: b"RPK2" | u8 flags | u32 record length |
#: record block | npz bytes.  Flags mark zlib-compressed blocks; npz
#: members are already deflated by ``np.savez_compressed``, so only the
#: record block is normally compressed here.  Pre-1.8 readers refuse
#: this magic with their "not a packed repro artifact" error instead of
#: parsing garbage.
_PACK_MAGIC_V2 = b"RPK2"
_FLAG_RECORD_ZLIB = 0x01
_FLAG_NPZ_ZLIB = 0x02

#: Environment switch for the default encoding of newly opened stores.
_COMPACT_ENV = "REPRO_STORE_COMPACT"


def store_locator(store: Union["ArtifactStore", StoreBackend, PathLike]) -> str:
    """Locator string reopening ``store`` — a live :class:`ArtifactStore`,
    a backend, a locator string or a path — picklable into workers.

    The one place that knows which attribute to read: duck-typing on
    ``.root`` is a trap, because ``pathlib.Path`` also exposes ``.root``
    (the filesystem anchor, e.g. ``"/"``).  For local stores this stays
    the plain directory path, so every pre-locator consumer (and log
    line) sees what it always saw.
    """
    if isinstance(store, ArtifactStore):
        store = store.backend
    if isinstance(store, StoreBackend):
        if store.scheme == "dir":
            # the path component of the canonical locator — not a
            # ``.root`` attribute read, which a wrapper (FaultyBackend)
            # would not forward through its own namespace
            return parse_store_locator(store.locator).path
        return store.locator
    return os.fspath(store)


#: Backward-compatible alias — PR-3 callers (and the experiment drivers)
#: import ``store_root``; a locator is what a "root" generalises into.
store_root = store_locator


def canonical_key_digest(key: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``key``.

    ``key`` must be JSON-serialisable after codec encoding (no arrays —
    keys are identities, not payloads).  Canonical form sorts object keys
    — including non-string-keyed (kdict) entries, whose pairs the codec
    keeps in insertion order for payload fidelity — and strips whitespace,
    so logically equal keys hash equally no matter how the dict was built.
    """
    arrays: Dict[str, np.ndarray] = {}
    encoded = encode(key, arrays)
    if arrays:
        raise TypeError("artifact keys must not contain arrays")
    text = strict_dumps(
        _sorted_kdicts(encoded), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _sorted_kdicts(node: Any) -> Any:
    """Order kdict item pairs canonically (by their JSON form).

    ``json.dumps(sort_keys=True)`` sorts object keys but cannot reorder a
    kdict's ``items`` *list* — insertion order would leak into the digest.
    """
    if isinstance(node, list):
        return [_sorted_kdicts(v) for v in node]
    if isinstance(node, dict):
        out = {k: _sorted_kdicts(v) for k, v in node.items()}
        if node.get("__repro__") == "kdict":
            out["items"] = sorted(
                out["items"], key=lambda kv: json.dumps(kv[0], sort_keys=True)
            )
        return out
    return node


@dataclass(frozen=True)
class ArtifactInfo:
    """One stored artifact's metadata (as listed by :meth:`ArtifactStore.entries`).

    ``size_bytes`` is what the artifact occupies *as stored* (encoded);
    ``logical_bytes`` is its dense-equivalent size — for pre-1.8 dense
    artifacts the two are equal.  ``codec`` is the payload-encoding
    generation that wrote the record (1 dense, 2 compact)."""

    digest: str
    kind: str
    created: float
    version: str
    size_bytes: int
    has_arrays: bool
    key: dict
    logical_bytes: int = 0
    codec: int = 1


def _pack(record_bytes: bytes, npz_bytes: bytes) -> bytes:
    return (
        _PACK_MAGIC
        + struct.pack(">I", len(record_bytes))
        + record_bytes
        + npz_bytes
    )


def _pack_v2(
    record_bytes: bytes, npz_bytes: bytes, compress: bool = True
) -> bytes:
    flags = 0
    rec = record_bytes
    if compress:
        squeezed = zlib.compress(record_bytes, 6)
        if len(squeezed) < len(record_bytes):
            rec, flags = squeezed, flags | _FLAG_RECORD_ZLIB
    return (
        _PACK_MAGIC_V2
        + bytes([flags])
        + struct.pack(">I", len(rec))
        + rec
        + npz_bytes
    )


def _unpack(blob: bytes) -> Tuple[bytes, bytes]:
    if blob[:4] == _PACK_MAGIC and len(blob) >= 8:
        (rec_len,) = struct.unpack(">I", blob[4:8])
        return blob[8:8 + rec_len], blob[8 + rec_len:]
    if blob[:4] == _PACK_MAGIC_V2 and len(blob) >= 9:
        flags = blob[4]
        (rec_len,) = struct.unpack(">I", blob[5:9])
        rec = blob[9:9 + rec_len]
        npz = blob[9 + rec_len:]
        if flags & _FLAG_RECORD_ZLIB:
            rec = zlib.decompress(rec)
        if flags & _FLAG_NPZ_ZLIB:
            npz = zlib.decompress(npz)
        return rec, npz
    raise ValueError("not a packed repro artifact")


class ArtifactStore:
    """Content-addressed store over a backend (resolved from a locator).

    ``compact`` picks the payload encoding for *writes* (reads always
    accept both): ``True`` for sparse/compressed codec-2 payloads,
    ``False`` for the pre-1.8 dense bytes, ``None`` (default) to follow
    ``REPRO_STORE_COMPACT`` (on unless set to ``0``/``false``/``off``).
    ``options`` injects a full :class:`EncodeOptions` instead and wins
    over ``compact``.
    """

    def __init__(
        self,
        root: Union[PathLike, StoreBackend],
        client=None,
        compact: Optional[bool] = None,
        options: Optional[EncodeOptions] = None,
    ) -> None:
        self.backend = open_backend(root, client=client)
        if options is None:
            if compact is None:
                compact = os.environ.get(_COMPACT_ENV, "1").strip().lower() \
                    not in ("0", "false", "off")
            options = EncodeOptions() if compact else DENSE_OPTIONS
        self.options = options
        # cumulative write accounting behind the compression-ratio gauge
        self._encoded_written = 0
        self._logical_written = 0

    def __repr__(self) -> str:
        return f"ArtifactStore({self.locator!r})"

    # ------------------------------------------------------------------
    # Identity / local-compat surface
    # ------------------------------------------------------------------
    @property
    def locator(self) -> str:
        return self.backend.locator

    @property
    def root(self):
        """The store's address: a :class:`pathlib.Path` for local stores
        (the historical attribute — tests and log lines treat it as a
        directory), the locator string for every other backend.  Derived
        from the locator, so it survives wrappers like FaultyBackend."""
        if self.backend.scheme == "dir":
            return pathlib.Path(parse_store_locator(self.backend.locator).path)
        return self.backend.locator

    @property
    def objects_dir(self) -> pathlib.Path:
        """Local stores only: the on-disk ``objects/`` directory."""
        return self._local_dir("objects")

    @property
    def journals_dir(self) -> pathlib.Path:
        """Local stores only: the on-disk ``journals/`` directory."""
        return self._local_dir("journals")

    def _local_dir(self, name: str) -> pathlib.Path:
        if self.backend.scheme != "dir":
            raise TypeError(
                f"{name}_dir is a filesystem notion; {self.locator} is a "
                f"{self.backend.scheme}:// store — use the backend API"
            )
        return self.root / name

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _object_keys(digest: str) -> Tuple[str, str]:
        bucket = f"objects/{digest[:2]}"
        return f"{bucket}/{digest}.json", f"{bucket}/{digest}.npz"

    @staticmethod
    def _pack_key(digest: str) -> str:
        return f"objects/{digest[:2]}/{digest}.pack"

    def _paths(self, digest: str) -> Tuple[pathlib.Path, pathlib.Path]:
        """Local stores only: the on-disk (json, npz) paths of a digest —
        the pre-backend private helper some tests (and maintenance
        scripts) poke files through."""
        json_key, npz_key = self._object_keys(digest)
        backend = self.backend
        if backend.scheme != "dir":
            raise TypeError(
                f"{self.locator} is not a filesystem store; "
                f"address objects by backend key instead"
            )
        return backend._path(json_key), backend._path(npz_key)  # type: ignore[attr-defined]

    def journal_keys(self) -> List[str]:
        """Backend keys of every sweep journal in this store (sorted)."""
        return [
            key
            for key in self.backend.list_prefix("journals/")
            if key.endswith(".jsonl")
        ]

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------
    def put(self, key: dict, payload: Any) -> str:
        """Persist ``payload`` under ``key``; returns the content digest.

        Overwriting an existing digest is allowed (and produces identical
        bytes, since the payload is a pure function of the key for every
        producer in this repo).  On packing backends the write is one
        conditional put — losing the race means the identical artifact is
        already committed, so the loss *is* the success path.
        """
        digest = canonical_key_digest(key)
        record_bytes, npz_bytes, logical = self._encode_record(
            key, payload, self.options
        )
        encoded = self._write(digest, record_bytes, npz_bytes, self.options)
        self._observe_payload(
            key.get("kind", "?") if isinstance(key, dict) else "?",
            encoded,
            logical if logical is not None else encoded,
        )
        return digest

    def _encode_record(
        self,
        key: dict,
        payload: Any,
        options: EncodeOptions,
        created: Optional[float] = None,
    ) -> Tuple[bytes, bytes, Optional[int]]:
        """``(record bytes, npz bytes, logical size)`` for one artifact.

        ``logical size`` is the dense-equivalent byte count (record plus
        uncompressed npz); ``None`` for dense writes, whose logical size
        *is* their encoded size.  ``created`` is preserved on repack so
        migration never rejuvenates artifacts under gc's age policy.
        """
        arrays: Dict[str, np.ndarray] = {}
        structure = encode(
            payload, arrays, options if options.compact else None
        )
        record = {
            "key": encode(key, {}),
            "kind": key.get("kind", "?") if isinstance(key, dict) else "?",
            "version": __version__,
            "created": time.time() if created is None else created,
            "payload": structure,
            "arrays": sorted(arrays),
        }
        logical: Optional[int] = None
        if options.compact:
            logical = self._dense_size(record, payload)
            record["codec"] = 2
            record["logical_bytes"] = logical
        record_bytes = strict_dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        npz_bytes = b""
        if arrays:
            buf = io.BytesIO()
            savez = np.savez_compressed if options.compress else np.savez
            savez(buf, **arrays)
            npz_bytes = buf.getvalue()
        return record_bytes, npz_bytes, logical

    @staticmethod
    def _dense_size(record: dict, payload: Any) -> int:
        """What this artifact would occupy in the pre-1.8 dense encoding
        — the ``logical_bytes`` listings report next to encoded sizes."""
        arrays: Dict[str, np.ndarray] = {}
        dense = dict(record)
        dense["payload"] = encode(payload, arrays)
        dense["arrays"] = sorted(arrays)
        size = len(
            strict_dumps(
                dense, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        )
        if arrays:
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            size += len(buf.getvalue())
        return size

    def _write(
        self,
        digest: str,
        record_bytes: bytes,
        npz_bytes: bytes,
        options: EncodeOptions,
        overwrite: bool = False,
    ) -> int:
        """Publish one encoded artifact; returns its stored byte count.

        ``overwrite`` is the repack path: packing backends must replace
        the existing single object (a conditional put would no-op), file
        backends overwrite anyway.  Either way arrays land before the
        record — the record is the commit marker.
        """
        if self.backend.packs_artifacts:
            if options.compact:
                blob = _pack_v2(
                    record_bytes, npz_bytes, compress=options.compress
                )
            else:
                blob = _pack(record_bytes, npz_bytes)
            if overwrite:
                self.backend.put_atomic(self._pack_key(digest), blob)
            else:
                self.backend.put_if_absent(self._pack_key(digest), blob)
            return len(blob)
        json_key, npz_key = self._object_keys(digest)
        if npz_bytes:
            self.backend.put_atomic(npz_key, npz_bytes)
        self.backend.put_atomic(json_key, record_bytes)
        return len(record_bytes) + len(npz_bytes)

    def _observe_payload(self, kind: str, encoded: int, logical: int) -> None:
        self._encoded_written += encoded
        self._logical_written += logical
        telemetry = obs.active()
        if telemetry is None:
            return
        telemetry.counter(
            "repro_payload_encoded_bytes_total",
            "Artifact payload bytes as written (post-encoding)",
            ("kind",),
        ).labels(kind=kind).inc(encoded)
        telemetry.counter(
            "repro_payload_logical_bytes_total",
            "Dense-equivalent bytes of artifact payloads written",
            ("kind",),
        ).labels(kind=kind).inc(logical)
        if self._encoded_written:
            telemetry.gauge(
                "repro_payload_compression_ratio",
                "Cumulative logical/encoded byte ratio of artifact writes",
            ).set(self._logical_written / self._encoded_written)

    def get(self, key: dict, default: Any = None) -> Any:
        """Load the payload stored under ``key`` (``default`` if absent)."""
        digest = canonical_key_digest(key)
        loaded = self._load(digest)
        return default if loaded is None else loaded

    def get_by_digest(self, digest: str) -> Any:
        """Load a payload by its content digest (KeyError if absent)."""
        loaded = self._load(digest)
        if loaded is None:
            raise KeyError(f"no artifact {digest!r} in {self.locator}")
        return loaded

    def contains(self, key: dict) -> bool:
        digest = canonical_key_digest(key)
        if self.backend.packs_artifacts:
            return self.backend.exists(self._pack_key(digest))
        return self.backend.exists(self._object_keys(digest)[0])

    def __contains__(self, key: dict) -> bool:
        return self.contains(key)

    def _load(self, digest: str):
        """Decoded payload for ``digest``, or ``None`` when absent (which
        includes losing a race against a concurrent delete — the artifact
        is simply gone; a miss, not a crash)."""
        raw = self._read_raw(digest)
        if raw is None:
            return None
        record, npz_bytes = raw
        arrays: Dict[str, np.ndarray] = {}
        if record.get("arrays"):
            if npz_bytes is None:
                return None  # arrays vanished under us (delete race)
            with np.load(io.BytesIO(npz_bytes)) as npz:
                arrays = {name: npz[name] for name in npz.files}
        return decode(record["payload"], arrays)

    def _read_raw(
        self, digest: str
    ) -> Optional[Tuple[dict, Optional[bytes]]]:
        """``(record, npz bytes or None)`` for ``digest``, else ``None``."""
        if self.backend.packs_artifacts:
            blob = self.backend.get(self._pack_key(digest))
            if blob is None:
                return None
            record_bytes, npz_bytes = _unpack(blob)
            return json.loads(record_bytes.decode("utf-8")), npz_bytes or None
        json_key, npz_key = self._object_keys(digest)
        record_bytes = self.backend.get(json_key)
        if record_bytes is None:
            return None
        record = json.loads(record_bytes.decode("utf-8"))
        npz_bytes = self.backend.get(npz_key) if record.get("arrays") else None
        return record, npz_bytes

    # ------------------------------------------------------------------
    # Introspection / maintenance (the `repro store` CLI surface)
    # ------------------------------------------------------------------
    def _artifact_keys(self) -> Iterator[Tuple[str, str]]:
        """``(digest, primary key)`` per committed artifact, digest-sorted."""
        suffix = ".pack" if self.backend.packs_artifacts else ".json"
        for key in self.backend.list_prefix("objects/"):
            if key.endswith(suffix):
                yield key.rsplit("/", 1)[-1][: -len(suffix)], key

    #: First probe of a packed object: both magics' headers fit in 9
    #: bytes (v1: magic + u32; v2: magic + flags + u32).
    _PACK_PROBE_BYTES = 9

    def _read_pack_record(self, primary: str) -> Optional[dict]:
        """The record of a packed artifact via *ranged* reads — header
        probe plus the record block, never the array payload.  ``None``
        when the object vanished (delete race); malformed packs raise
        the same ``ValueError`` a full unpack would."""
        head = self.backend.get_range(primary, 0, self._PACK_PROBE_BYTES)
        if head is None:
            return None
        if head[:4] == _PACK_MAGIC and len(head) >= 8:
            (rec_len,) = struct.unpack(">I", head[4:8])
            offset, compressed = 8, False
        elif head[:4] == _PACK_MAGIC_V2 and len(head) >= 9:
            (rec_len,) = struct.unpack(">I", head[5:9])
            offset, compressed = 9, bool(head[4] & _FLAG_RECORD_ZLIB)
        else:
            raise ValueError("not a packed repro artifact")
        record_bytes = self.backend.get_range(primary, offset, rec_len)
        if record_bytes is None or len(record_bytes) < rec_len:
            return None  # deleted (or replaced shorter) between probes
        if compressed:
            record_bytes = zlib.decompress(record_bytes)
        return json.loads(record_bytes.decode("utf-8"))

    def entries(self) -> Iterator[ArtifactInfo]:
        """All stored artifacts, sorted by digest (stable listings).

        Listing reads records only — array payloads are *stat*'ed for
        their size, never fetched, so ``repro store ls`` over gigabytes
        of arrays stays metadata-cheap.  Packing backends store record
        and arrays as one object; the size comes from ``stat`` and the
        record from a bounded ranged read of the object's head, so the
        contract holds there too."""
        for digest, primary in self._artifact_keys():
            if self.backend.packs_artifacts:
                stat = self.backend.stat(primary)
                if stat is None:  # raced with a delete
                    continue
                record = self._read_pack_record(primary)
                if record is None:
                    continue
                size = stat.size
            else:
                record_bytes = self.backend.get(primary)
                if record_bytes is None:  # raced with a delete
                    continue
                size = len(record_bytes)
                record = json.loads(record_bytes.decode("utf-8"))
            has_arrays = bool(record.get("arrays"))
            if has_arrays and not self.backend.packs_artifacts:
                npz_stat = self.backend.stat(self._object_keys(digest)[1])
                if npz_stat is not None:
                    size += npz_stat.size
            yield ArtifactInfo(
                digest=digest,
                kind=str(record.get("kind", "?")),
                created=float(record.get("created", 0.0)),
                version=str(record.get("version", "?")),
                size_bytes=size,
                has_arrays=has_arrays,
                key=decode(record.get("key", {}), {}),
                logical_bytes=int(record.get("logical_bytes") or size),
                codec=int(record.get("codec", 1)),
            )

    def delete(self, digest: str) -> int:
        """Remove one artifact; returns bytes freed (the commit marker
        goes first, so a concurrent reader sees either the full artifact
        or none)."""
        if self.backend.packs_artifacts:
            return self.backend.delete(self._pack_key(digest))
        json_key, npz_key = self._object_keys(digest)
        return self.backend.delete(json_key) + self.backend.delete(npz_key)

    def repack(
        self, compact: bool = True, dry_run: bool = False
    ) -> Dict[str, int]:
        """Re-encode every artifact in place to the target encoding
        (``compact=True`` for sparse/compressed codec 2, ``False`` back
        to pre-1.8 dense) — ``repro store repack``.

        Digests are unchanged (addresses hash the dense canonical key),
        ``created`` stamps are preserved (migration never rejuvenates
        artifacts under gc's age policy), artifacts already in the
        target encoding are skipped, and a file-backed artifact whose
        arrays all became inline sparse cells gets its now-unreferenced
        ``.npz`` deleted after the new record commits — no debris for
        gc to misread.  ``dry_run=True`` computes the same report
        without touching the store.

        Returns ``{"examined", "repacked", "skipped", "bytes_before",
        "bytes_after"}`` (byte totals cover repacked artifacts only).
        """
        options = replace(
            self.options, compact=compact, compress=compact
        )
        target_codec = 2 if compact else 1
        report = {
            "examined": 0,
            "repacked": 0,
            "skipped": 0,
            "bytes_before": 0,
            "bytes_after": 0,
        }
        for digest, primary in list(self._artifact_keys()):
            if self.backend.packs_artifacts:
                blob = self.backend.get(primary)
                if blob is None:
                    continue
                before = len(blob)
                old_record_bytes, old_npz = _unpack(blob)
            else:
                old_record_bytes = self.backend.get(primary)
                if old_record_bytes is None:
                    continue
                npz_key = self._object_keys(digest)[1]
                old_npz = self.backend.get(npz_key) or b""
                before = len(old_record_bytes) + len(old_npz)
            record = json.loads(old_record_bytes.decode("utf-8"))
            report["examined"] += 1
            if int(record.get("codec", 1)) == target_codec:
                report["skipped"] += 1
                continue
            arrays: Dict[str, np.ndarray] = {}
            if record.get("arrays"):
                with np.load(io.BytesIO(old_npz)) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            payload = decode(record["payload"], arrays)
            key = decode(record.get("key", {}), {})
            record_bytes, npz_bytes, _ = self._encode_record(
                key, payload, options, created=record.get("created")
            )
            if self.backend.packs_artifacts:
                if options.compact:
                    after = len(
                        _pack_v2(
                            record_bytes, npz_bytes, compress=options.compress
                        )
                    )
                else:
                    after = len(_pack(record_bytes, npz_bytes))
            else:
                after = len(record_bytes) + len(npz_bytes)
            if not dry_run:
                self._write(
                    digest, record_bytes, npz_bytes, options, overwrite=True
                )
                if not self.backend.packs_artifacts and not npz_bytes:
                    self.backend.delete(self._object_keys(digest)[1])
            report["repacked"] += 1
            report["bytes_before"] += before
            report["bytes_after"] += after
        return report

    #: Crash debris younger than this may belong to a live writer (a
    #: write takes milliseconds; an hour of margin makes gc safe to run
    #: beside an active sweep — the "benign race" promise above must hold
    #: for maintenance too, since gc cannot tell crashed from in-flight).
    TMP_GRACE_SECONDS = 3600.0

    def gc(
        self,
        older_than_days: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Garbage-collect, on any backend:

        * **crash debris** — half-written partials a killed writer left
          (temp files on disk, uncommitted parts on object stores —
          under ``objects/`` and ``journals/`` alike), after a safety
          grace period;
        * **orphaned payloads** — array objects whose commit marker never
          landed (the writer died between the two puts), same grace;
        * with ``older_than_days``: every artifact whose record is older
          than that many days.

        ``dry_run=True`` reports the same counts and byte totals without
        touching the store, so the deletion policy can be audited first
        (``repro store gc --dry-run``).  The report of a dry run and the
        following real run agree unless the store changed in between —
        pinned, per backend, in ``tests/test_store_gc.py``.

        Returns ``{"removed": count, "freed_bytes": total}``.
        """
        removed = 0
        freed = 0
        now = time.time()
        grace_cutoff = now - self.TMP_GRACE_SECONDS

        # Debris anywhere in the store: artifact writes under objects/,
        # but also journal-lease litter under journals/ (a writer killed
        # inside a conditional put leaves its temp there too).
        for key in self.backend.partial_keys(""):
            stat = self.backend.stat(key)
            if stat is None:
                continue  # the writer published or cleaned up first
            if stat.mtime >= grace_cutoff:
                continue  # possibly a live writer's file
            if not dry_run and self.backend.delete(key) == 0:
                continue
            freed += stat.size
            removed += 1

        if not self.backend.packs_artifacts:
            for key in self.backend.list_prefix("objects/"):
                if not key.endswith(".npz"):
                    continue
                marker = key[: -len(".npz")] + ".json"
                marker_bytes = self.backend.get(marker)
                if marker_bytes is not None:
                    # A committed record references its arrays — unless a
                    # repack inlined them all and died before deleting
                    # the stale .npz; that leftover is unreferenced and
                    # collectable under the same grace period.
                    try:
                        referenced = bool(
                            json.loads(marker_bytes.decode("utf-8")).get(
                                "arrays"
                            )
                        )
                    except (ValueError, UnicodeDecodeError):
                        referenced = True  # unreadable record: keep data
                    if referenced:
                        continue
                stat = self.backend.stat(key)
                if stat is None or stat.mtime >= grace_cutoff:
                    continue
                if not dry_run and self.backend.delete(key) == 0:
                    continue
                freed += stat.size
                removed += 1

        if older_than_days is not None:
            cutoff = now - float(older_than_days) * 86400.0
            for info in list(self.entries()):
                if info.created < cutoff:
                    if dry_run:
                        freed += info.size_bytes
                    else:
                        freed += self.delete(info.digest)
                    removed += 1
        return {"removed": removed, "freed_bytes": freed}
