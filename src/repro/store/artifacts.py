"""Content-addressed artifact store over a pluggable transport backend.

An :class:`ArtifactStore` holds immutable artifacts addressed by the
SHA-256 of a *canonical JSON key* — the same canonicalisation (sorted
keys, minimal separators) for every writer, so two processes that
describe the same logical object compute the same address and the second
write is a no-op overwrite with identical bytes.

The store no longer knows about directories: all I/O goes through a
:class:`~repro.store.backends.StoreBackend`, selected by a URL-style
locator (``dir:///path`` — or any plain path — ``mem://name``,
``s3://bucket/prefix``; see :mod:`repro.store.locator`).  Two artifact
layouts, chosen by the backend's capabilities:

**File-shaped backends** (``dir``, ``mem``)::

    objects/<hh>/<digest>.json   key + metadata + encoded structure
    objects/<hh>/<digest>.npz    array payloads (only when there are any)
    journals/<digest16>.jsonl    sweep journals (see repro.store.journal)

Arrays publish first and the ``.json`` record last — the JSON record is
the commit marker, so a reader can never observe a record whose arrays
are missing or half-written.  On disk this is byte-for-byte the layout
(and the tmp-file + ``os.replace`` crash safety) the store has always
had: existing store directories keep working.

**Packing backends** (``s3``-style single-key blobs)::

    objects/<hh>/<digest>.pack   record + arrays in ONE object

One object per artifact, committed by a *conditional put* (the pack is
its own commit marker): because the payload is a pure function of the
key for every producer in this repo, a lost race simply means identical
content is already committed.  GC is a prefix listing.

Concurrent writers of the same key race benignly either way.  Values are
encoded through :mod:`repro.store.codecs`, so calibration matrices,
mitigator states, coupling maps and nested tuple-keyed dicts all
round-trip bit-identically (array payloads are lossless binary).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import struct
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro._version import __version__
from repro.store.backends import StoreBackend, open_backend
from repro.store.codecs import decode, encode
from repro.store.locator import parse_store_locator

__all__ = [
    "ArtifactStore",
    "ArtifactInfo",
    "canonical_key_digest",
    "store_root",
    "store_locator",
]

PathLike = Union[str, os.PathLike]

#: Packed-artifact magic + header: b"RPAK" | u32 record length | record
#: JSON | npz bytes.  Version bumps get a new magic, not a silent skew.
_PACK_MAGIC = b"RPAK"


def store_locator(store: Union["ArtifactStore", StoreBackend, PathLike]) -> str:
    """Locator string reopening ``store`` — a live :class:`ArtifactStore`,
    a backend, a locator string or a path — picklable into workers.

    The one place that knows which attribute to read: duck-typing on
    ``.root`` is a trap, because ``pathlib.Path`` also exposes ``.root``
    (the filesystem anchor, e.g. ``"/"``).  For local stores this stays
    the plain directory path, so every pre-locator consumer (and log
    line) sees what it always saw.
    """
    if isinstance(store, ArtifactStore):
        store = store.backend
    if isinstance(store, StoreBackend):
        if store.scheme == "dir":
            # the path component of the canonical locator — not a
            # ``.root`` attribute read, which a wrapper (FaultyBackend)
            # would not forward through its own namespace
            return parse_store_locator(store.locator).path
        return store.locator
    return os.fspath(store)


#: Backward-compatible alias — PR-3 callers (and the experiment drivers)
#: import ``store_root``; a locator is what a "root" generalises into.
store_root = store_locator


def canonical_key_digest(key: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``key``.

    ``key`` must be JSON-serialisable after codec encoding (no arrays —
    keys are identities, not payloads).  Canonical form sorts object keys
    — including non-string-keyed (kdict) entries, whose pairs the codec
    keeps in insertion order for payload fidelity — and strips whitespace,
    so logically equal keys hash equally no matter how the dict was built.
    """
    arrays: Dict[str, np.ndarray] = {}
    encoded = encode(key, arrays)
    if arrays:
        raise TypeError("artifact keys must not contain arrays")
    text = json.dumps(
        _sorted_kdicts(encoded), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _sorted_kdicts(node: Any) -> Any:
    """Order kdict item pairs canonically (by their JSON form).

    ``json.dumps(sort_keys=True)`` sorts object keys but cannot reorder a
    kdict's ``items`` *list* — insertion order would leak into the digest.
    """
    if isinstance(node, list):
        return [_sorted_kdicts(v) for v in node]
    if isinstance(node, dict):
        out = {k: _sorted_kdicts(v) for k, v in node.items()}
        if node.get("__repro__") == "kdict":
            out["items"] = sorted(
                out["items"], key=lambda kv: json.dumps(kv[0], sort_keys=True)
            )
        return out
    return node


@dataclass(frozen=True)
class ArtifactInfo:
    """One stored artifact's metadata (as listed by :meth:`ArtifactStore.entries`)."""

    digest: str
    kind: str
    created: float
    version: str
    size_bytes: int
    has_arrays: bool
    key: dict


def _pack(record_bytes: bytes, npz_bytes: bytes) -> bytes:
    return (
        _PACK_MAGIC
        + struct.pack(">I", len(record_bytes))
        + record_bytes
        + npz_bytes
    )


def _unpack(blob: bytes) -> Tuple[bytes, bytes]:
    if blob[:4] != _PACK_MAGIC or len(blob) < 8:
        raise ValueError("not a packed repro artifact")
    (rec_len,) = struct.unpack(">I", blob[4:8])
    return blob[8:8 + rec_len], blob[8 + rec_len:]


class ArtifactStore:
    """Content-addressed store over a backend (resolved from a locator)."""

    def __init__(self, root: Union[PathLike, StoreBackend], client=None) -> None:
        self.backend = open_backend(root, client=client)

    def __repr__(self) -> str:
        return f"ArtifactStore({self.locator!r})"

    # ------------------------------------------------------------------
    # Identity / local-compat surface
    # ------------------------------------------------------------------
    @property
    def locator(self) -> str:
        return self.backend.locator

    @property
    def root(self):
        """The store's address: a :class:`pathlib.Path` for local stores
        (the historical attribute — tests and log lines treat it as a
        directory), the locator string for every other backend.  Derived
        from the locator, so it survives wrappers like FaultyBackend."""
        if self.backend.scheme == "dir":
            return pathlib.Path(parse_store_locator(self.backend.locator).path)
        return self.backend.locator

    @property
    def objects_dir(self) -> pathlib.Path:
        """Local stores only: the on-disk ``objects/`` directory."""
        return self._local_dir("objects")

    @property
    def journals_dir(self) -> pathlib.Path:
        """Local stores only: the on-disk ``journals/`` directory."""
        return self._local_dir("journals")

    def _local_dir(self, name: str) -> pathlib.Path:
        if self.backend.scheme != "dir":
            raise TypeError(
                f"{name}_dir is a filesystem notion; {self.locator} is a "
                f"{self.backend.scheme}:// store — use the backend API"
            )
        return self.root / name

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _object_keys(digest: str) -> Tuple[str, str]:
        bucket = f"objects/{digest[:2]}"
        return f"{bucket}/{digest}.json", f"{bucket}/{digest}.npz"

    @staticmethod
    def _pack_key(digest: str) -> str:
        return f"objects/{digest[:2]}/{digest}.pack"

    def _paths(self, digest: str) -> Tuple[pathlib.Path, pathlib.Path]:
        """Local stores only: the on-disk (json, npz) paths of a digest —
        the pre-backend private helper some tests (and maintenance
        scripts) poke files through."""
        json_key, npz_key = self._object_keys(digest)
        backend = self.backend
        if backend.scheme != "dir":
            raise TypeError(
                f"{self.locator} is not a filesystem store; "
                f"address objects by backend key instead"
            )
        return backend._path(json_key), backend._path(npz_key)  # type: ignore[attr-defined]

    def journal_keys(self) -> List[str]:
        """Backend keys of every sweep journal in this store (sorted)."""
        return [
            key
            for key in self.backend.list_prefix("journals/")
            if key.endswith(".jsonl")
        ]

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------
    def put(self, key: dict, payload: Any) -> str:
        """Persist ``payload`` under ``key``; returns the content digest.

        Overwriting an existing digest is allowed (and produces identical
        bytes, since the payload is a pure function of the key for every
        producer in this repo).  On packing backends the write is one
        conditional put — losing the race means the identical artifact is
        already committed, so the loss *is* the success path.
        """
        digest = canonical_key_digest(key)
        arrays: Dict[str, np.ndarray] = {}
        structure = encode(payload, arrays)
        record = {
            "key": encode(key, {}),
            "kind": key.get("kind", "?") if isinstance(key, dict) else "?",
            "version": __version__,
            "created": time.time(),
            "payload": structure,
            "arrays": sorted(arrays),
        }
        record_bytes = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        npz_bytes = b""
        if arrays:
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            npz_bytes = buf.getvalue()

        if self.backend.packs_artifacts:
            self.backend.put_if_absent(
                self._pack_key(digest), _pack(record_bytes, npz_bytes)
            )
        else:
            json_key, npz_key = self._object_keys(digest)
            if arrays:
                self.backend.put_atomic(npz_key, npz_bytes)
            self.backend.put_atomic(json_key, record_bytes)
        return digest

    def get(self, key: dict, default: Any = None) -> Any:
        """Load the payload stored under ``key`` (``default`` if absent)."""
        digest = canonical_key_digest(key)
        loaded = self._load(digest)
        return default if loaded is None else loaded

    def get_by_digest(self, digest: str) -> Any:
        """Load a payload by its content digest (KeyError if absent)."""
        loaded = self._load(digest)
        if loaded is None:
            raise KeyError(f"no artifact {digest!r} in {self.locator}")
        return loaded

    def contains(self, key: dict) -> bool:
        digest = canonical_key_digest(key)
        if self.backend.packs_artifacts:
            return self.backend.exists(self._pack_key(digest))
        return self.backend.exists(self._object_keys(digest)[0])

    def __contains__(self, key: dict) -> bool:
        return self.contains(key)

    def _load(self, digest: str):
        """Decoded payload for ``digest``, or ``None`` when absent (which
        includes losing a race against a concurrent delete — the artifact
        is simply gone; a miss, not a crash)."""
        raw = self._read_raw(digest)
        if raw is None:
            return None
        record, npz_bytes = raw
        arrays: Dict[str, np.ndarray] = {}
        if record.get("arrays"):
            if npz_bytes is None:
                return None  # arrays vanished under us (delete race)
            with np.load(io.BytesIO(npz_bytes)) as npz:
                arrays = {name: npz[name] for name in npz.files}
        return decode(record["payload"], arrays)

    def _read_raw(
        self, digest: str
    ) -> Optional[Tuple[dict, Optional[bytes]]]:
        """``(record, npz bytes or None)`` for ``digest``, else ``None``."""
        if self.backend.packs_artifacts:
            blob = self.backend.get(self._pack_key(digest))
            if blob is None:
                return None
            record_bytes, npz_bytes = _unpack(blob)
            return json.loads(record_bytes.decode("utf-8")), npz_bytes or None
        json_key, npz_key = self._object_keys(digest)
        record_bytes = self.backend.get(json_key)
        if record_bytes is None:
            return None
        record = json.loads(record_bytes.decode("utf-8"))
        npz_bytes = self.backend.get(npz_key) if record.get("arrays") else None
        return record, npz_bytes

    # ------------------------------------------------------------------
    # Introspection / maintenance (the `repro store` CLI surface)
    # ------------------------------------------------------------------
    def _artifact_keys(self) -> Iterator[Tuple[str, str]]:
        """``(digest, primary key)`` per committed artifact, digest-sorted."""
        suffix = ".pack" if self.backend.packs_artifacts else ".json"
        for key in self.backend.list_prefix("objects/"):
            if key.endswith(suffix):
                yield key.rsplit("/", 1)[-1][: -len(suffix)], key

    def entries(self) -> Iterator[ArtifactInfo]:
        """All stored artifacts, sorted by digest (stable listings).

        Listing reads records only — array payloads are *stat*'ed for
        their size, never fetched, so ``repro store ls`` over gigabytes
        of arrays stays metadata-cheap.  (Packing backends store record
        and arrays as one object; there a read is the object, which is
        the price of single-key artifacts.)"""
        for digest, primary in self._artifact_keys():
            if self.backend.packs_artifacts:
                blob = self.backend.get(primary)
                if blob is None:  # raced with a delete
                    continue
                record_bytes, _ = _unpack(blob)
                size = len(blob)
            else:
                record_bytes = self.backend.get(primary)
                if record_bytes is None:  # raced with a delete
                    continue
                size = len(record_bytes)
            record = json.loads(record_bytes.decode("utf-8"))
            has_arrays = bool(record.get("arrays"))
            if has_arrays and not self.backend.packs_artifacts:
                npz_stat = self.backend.stat(self._object_keys(digest)[1])
                if npz_stat is not None:
                    size += npz_stat.size
            yield ArtifactInfo(
                digest=digest,
                kind=str(record.get("kind", "?")),
                created=float(record.get("created", 0.0)),
                version=str(record.get("version", "?")),
                size_bytes=size,
                has_arrays=has_arrays,
                key=decode(record.get("key", {}), {}),
            )

    def delete(self, digest: str) -> int:
        """Remove one artifact; returns bytes freed (the commit marker
        goes first, so a concurrent reader sees either the full artifact
        or none)."""
        if self.backend.packs_artifacts:
            return self.backend.delete(self._pack_key(digest))
        json_key, npz_key = self._object_keys(digest)
        return self.backend.delete(json_key) + self.backend.delete(npz_key)

    #: Crash debris younger than this may belong to a live writer (a
    #: write takes milliseconds; an hour of margin makes gc safe to run
    #: beside an active sweep — the "benign race" promise above must hold
    #: for maintenance too, since gc cannot tell crashed from in-flight).
    TMP_GRACE_SECONDS = 3600.0

    def gc(
        self,
        older_than_days: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Garbage-collect, on any backend:

        * **crash debris** — half-written partials a killed writer left
          (temp files on disk, uncommitted parts on object stores —
          under ``objects/`` and ``journals/`` alike), after a safety
          grace period;
        * **orphaned payloads** — array objects whose commit marker never
          landed (the writer died between the two puts), same grace;
        * with ``older_than_days``: every artifact whose record is older
          than that many days.

        ``dry_run=True`` reports the same counts and byte totals without
        touching the store, so the deletion policy can be audited first
        (``repro store gc --dry-run``).  The report of a dry run and the
        following real run agree unless the store changed in between —
        pinned, per backend, in ``tests/test_store_gc.py``.

        Returns ``{"removed": count, "freed_bytes": total}``.
        """
        removed = 0
        freed = 0
        now = time.time()
        grace_cutoff = now - self.TMP_GRACE_SECONDS

        # Debris anywhere in the store: artifact writes under objects/,
        # but also journal-lease litter under journals/ (a writer killed
        # inside a conditional put leaves its temp there too).
        for key in self.backend.partial_keys(""):
            stat = self.backend.stat(key)
            if stat is None:
                continue  # the writer published or cleaned up first
            if stat.mtime >= grace_cutoff:
                continue  # possibly a live writer's file
            if not dry_run and self.backend.delete(key) == 0:
                continue
            freed += stat.size
            removed += 1

        if not self.backend.packs_artifacts:
            for key in self.backend.list_prefix("objects/"):
                if not key.endswith(".npz"):
                    continue
                marker = key[: -len(".npz")] + ".json"
                if self.backend.exists(marker):
                    continue
                stat = self.backend.stat(key)
                if stat is None or stat.mtime >= grace_cutoff:
                    continue
                if not dry_run and self.backend.delete(key) == 0:
                    continue
                freed += stat.size
                removed += 1

        if older_than_days is not None:
            cutoff = now - float(older_than_days) * 86400.0
            for info in list(self.entries()):
                if info.created < cutoff:
                    if dry_run:
                        freed += info.size_bytes
                    else:
                        freed += self.delete(info.digest)
                    removed += 1
        return {"removed": removed, "freed_bytes": freed}
