"""URL-style store locators: one string names any store backend.

A *locator* is how every store-aware surface — ``run_sweep(store=...)``,
``repro sweep --store``, ``repro store ls|inspect|gc``, ``repro serve`` —
addresses a store without knowing its transport:

========================  ==============================================
locator                   backend
========================  ==============================================
``/path`` or ``./path``   :class:`~repro.store.backends.LocalDirBackend`
``dir:///path``           same, explicit scheme
``mem://name``            :class:`~repro.store.backends.MemoryBackend`
``s3://bucket/prefix``    :class:`~repro.store.backends.ObjectStoreBackend`
========================  ==============================================

A plain path (anything without ``://``) is a ``dir`` locator, so every
pre-backend call site — and every existing store directory — keeps
working unchanged.

:func:`parse_store_locator` and :meth:`StoreLocator.__str__` are exact
inverses for canonical locators (property-pinned in
``tests/test_store_locator.py``): ``parse(str(loc)) == loc`` always, and
``str(parse(text))`` is the canonical spelling of ``text``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Union

__all__ = ["StoreLocator", "parse_store_locator", "is_store_locator"]

#: Schemes with a registered backend (see repro.store.backends.open_backend).
SCHEMES = ("dir", "mem", "s3")

#: ``mem://`` space names: path-safe, non-empty, no separators — a name is
#: an identity, not a path.
_MEM_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: ``s3://`` bucket names (DNS-label-ish, the fake client is no stricter
#: than real object stores are).
_BUCKET = re.compile(r"^[a-z0-9][a-z0-9.-]*$")


@dataclass(frozen=True)
class StoreLocator:
    """A parsed store address: ``scheme`` plus a scheme-shaped ``path``.

    ``path`` is the directory path for ``dir``, the space name for
    ``mem``, and ``bucket[/prefix]`` for ``s3``.  Construction validates;
    an invalid combination never becomes a live locator.
    """

    scheme: str
    path: str

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown store scheme {self.scheme!r}; "
                f"expected one of {', '.join(SCHEMES)}"
            )
        if self.scheme == "dir":
            if not self.path:
                raise ValueError("dir:// locator needs a directory path")
        elif self.scheme == "mem":
            if not _MEM_NAME.match(self.path):
                raise ValueError(
                    f"mem:// space name {self.path!r} is invalid: use "
                    f"letters, digits, '.', '_' or '-' (no slashes)"
                )
        else:  # s3
            bucket, _, prefix = self.path.partition("/")
            if not _BUCKET.match(bucket):
                raise ValueError(f"s3:// bucket {bucket!r} is invalid")
            if prefix != prefix.strip("/") or "//" in prefix:
                raise ValueError(
                    f"s3:// prefix {prefix!r} must not have empty segments"
                )

    # ------------------------------------------------------------------
    @property
    def bucket(self) -> str:
        """``s3`` only: the bucket component."""
        return self.path.partition("/")[0]

    @property
    def prefix(self) -> str:
        """``s3`` only: the key prefix under the bucket (may be empty)."""
        return self.path.partition("/")[2]

    def __str__(self) -> str:
        return f"{self.scheme}://{self.path}"


def is_store_locator(text: str) -> bool:
    """Does ``text`` carry an explicit ``scheme://``?  (A plain path does
    not, but still *parses* — as a ``dir`` locator.)"""
    return bool(re.match(r"^[A-Za-z][A-Za-z0-9+.-]*://", text))


def parse_store_locator(text: Union[str, os.PathLike]) -> StoreLocator:
    """Parse a locator string (or plain path) into a :class:`StoreLocator`.

    Exact inverse of ``str()`` on canonical locators.  A string without
    ``://`` is a local directory path — the backward-compatible default
    every pre-locator call site relies on.  Windows-style drive letters
    (``C:\\store``) are paths, not schemes.
    """
    text = os.fspath(text)
    if not text:
        raise ValueError("empty store locator")
    if not is_store_locator(text):
        return StoreLocator("dir", text)
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme not in SCHEMES:
        raise ValueError(
            f"unknown store scheme {scheme!r} in {text!r}; "
            f"expected one of {', '.join(SCHEMES)}"
        )
    if scheme == "s3":
        rest = rest.rstrip("/")
    return StoreLocator(scheme, rest)
