"""Round-trip codecs between library objects and (JSON, arrays) pairs.

Everything the :class:`~repro.store.artifacts.ArtifactStore` persists goes
through :func:`encode` / :func:`decode`: a tagged, self-describing encoding
that splits a Python object graph into

* a JSON-serialisable *structure* (plain dicts/lists/strings/numbers plus
  ``{"__repro__": <kind>, ...}`` tag nodes), and
* a flat ``{name: ndarray}`` *array table* holding every numeric payload
  verbatim (persisted as one ``.npz`` member per array — lossless binary,
  so round trips are bit-identical, not merely close).

The codec covers exactly the shapes the pipeline needs to persist —
mitigator ``calibration_state()`` dicts, :class:`CalibrationMatrix`,
:class:`CouplingMap`, sweep records — which are built from:

=====================  ===============================================
value                  encoding
=====================  ===============================================
None/bool/int/float    JSON scalar (Python floats round-trip exactly:
str                    ``json`` emits ``repr`` which ``float()`` inverts)
tuple                  ``{"__repro__": "tuple", "items": [...]}``
list                   JSON array
dict (str keys)        JSON object (escaped when it contains the tag key)
dict (any keys)        ``{"__repro__": "kdict", "items": [[k, v], ...]}``
numpy scalar           canonicalised to the Python scalar
numpy ndarray          ``{"__repro__": "ndarray", "ref": name}``
CalibrationMatrix      qubit tuple + matrix array ref
CouplingMap            num_qubits + edge list + name
CalNodeState           name/kind/qubits/fingerprint + encoded payload
=====================  ===============================================

Tuple-vs-list and int-vs-string-key distinctions are preserved because the
calibration states key on qubit tuples and integer qubit indices —
"mostly JSON" encodings that collapse those would load states that *look*
right but miss every dictionary lookup.

Compact payloads (codec 2)
--------------------------
Calibration matrices are overwhelmingly identity: on an N-qubit device the
CMC-ERR machinery stores O(N^2) pair matrices whose cells mostly equal the
identity exactly (unobserved flip combinations stay at their initial 0/1).
With :class:`EncodeOptions` (``compact=True``) a :class:`CalibrationMatrix`
whose deviation *density* is at or below ``density_threshold`` — or whose
sparse form is simply smaller by the byte-cost model — is encoded as

    ``{"__repro__": "calibration_matrix_sparse", "qubits": [...],``
    ``  "cells": [[row, col, value], ...]}``

listing **verbatim** values at exactly the coordinates where the matrix
differs from the identity.  Decode rebuilds ``np.eye`` and assigns the
cells back: no arithmetic anywhere, so the round trip is bit-exact by
construction (JSON serialises floats via ``repr``, which ``float()``
inverts exactly).  Matrices that are too dense, not float64, or contain
non-finite values fall back to the dense array-ref form unchanged.
Readers older than 1.8 refuse the new tag with the codec's typed
unknown-tag error (:class:`UnknownCodecTagError` here) instead of
decoding garbage; every pre-1.8 dense artifact decodes unchanged.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.core.calibration import CalibrationMatrix
from repro.topology.coupling_map import CouplingMap

__all__ = [
    "encode",
    "decode",
    "deep_equal",
    "EncodeOptions",
    "DENSE_OPTIONS",
    "COMPACT_OPTIONS",
    "NonFiniteValueError",
    "UnknownCodecTagError",
    "strict_dumps",
]

#: The tag key; a plain dict that happens to contain it is escaped as kdict.
TAG = "__repro__"


class UnknownCodecTagError(ValueError):
    """An encoded node carries a tag this reader does not understand —
    written by a newer codec.  Raised instead of returning garbage; the
    fix is upgrading the reader (or ``repro store repack`` back to the
    dense form with a new writer)."""


class NonFiniteValueError(ValueError):
    """A NaN/Infinity reached a canonical or record JSON dump.  Python's
    ``json`` would emit non-standard ``NaN``/``Infinity`` tokens that
    strict parsers reject — and ``NaN != NaN`` silently breaks every
    equality pin downstream — so the store refuses instead.  The message
    names the offending path."""


@dataclass(frozen=True)
class EncodeOptions:
    """Per-store payload-encoding knobs (codec 2 when ``compact``).

    ``density_threshold`` is the deviation-cell fraction at or below
    which a calibration matrix takes the sparse form; above it, the
    byte-cost model still picks sparse when it is estimated smaller
    (small matrices with a deviating diagonal would otherwise never
    qualify).  ``compress`` additionally zlib-compresses npz members
    (``np.savez_compressed``) and packed-object records.
    """

    compact: bool = True
    density_threshold: float = 0.5
    compress: bool = True


#: Legacy (pre-1.8, codec 1) behaviour: dense refs, uncompressed members.
DENSE_OPTIONS = EncodeOptions(compact=False, compress=False)
#: Default compact behaviour for new writes.
COMPACT_OPTIONS = EncodeOptions()

#: Byte-cost model for the sparse-vs-dense choice: one JSON cell
#: ``[i, j, 0.0123456789012345]`` runs ~26 bytes, a sparse node ~40 bytes
#: of framing; a dense ref costs 8 bytes/cell of float64 payload plus
#: ~360 bytes of npz member overhead (header + zip directory entry).
_SPARSE_CELL_COST = 26
_SPARSE_NODE_COST = 40
_DENSE_CELL_COST = 8
_DENSE_MEMBER_COST = 360


def _new_ref(arrays: Dict[str, np.ndarray]) -> str:
    return f"a{len(arrays)}"


def _sparse_matrix_node(
    cal: CalibrationMatrix, options: EncodeOptions
) -> Optional[Dict[str, Any]]:
    """The sparse node for ``cal``, or ``None`` when dense is the right
    form (too dense, unusual dtype, or non-finite cells — the latter are
    refused here so sparse payloads are strict-JSON-safe by construction
    and the npz path keeps carrying them verbatim)."""
    m = cal.matrix
    if m.dtype != np.float64 or not np.isfinite(m).all():
        return None
    rows, cols = np.nonzero(m != np.eye(m.shape[0]))
    count = int(rows.size)
    sparse_cost = _SPARSE_CELL_COST * count + _SPARSE_NODE_COST
    dense_cost = _DENSE_CELL_COST * m.size + _DENSE_MEMBER_COST
    if count > options.density_threshold * m.size and sparse_cost > dense_cost:
        return None
    return {
        TAG: "calibration_matrix_sparse",
        "qubits": list(cal.qubits),
        "cells": [
            [int(i), int(j), float(m[i, j])] for i, j in zip(rows, cols)
        ],
    }


def encode(
    obj: Any,
    arrays: Dict[str, np.ndarray],
    options: Optional[EncodeOptions] = None,
) -> Any:
    """Encode ``obj`` into a JSON-able structure, filling ``arrays``.

    ``options=None`` (and ``compact=False``) reproduces the pre-1.8
    dense encoding byte-for-byte — canonical *keys* always hash the
    dense form, so digests never depend on the payload encoding."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, tuple):
        return {
            TAG: "tuple", "items": [encode(v, arrays, options) for v in obj]
        }
    if isinstance(obj, list):
        return [encode(v, arrays, options) for v in obj]
    if isinstance(obj, np.ndarray):
        ref = _new_ref(arrays)
        arrays[ref] = obj
        return {TAG: "ndarray", "ref": ref}
    if isinstance(obj, CalibrationMatrix):
        if options is not None and options.compact:
            node = _sparse_matrix_node(obj, options)
            if node is not None:
                return node
        ref = _new_ref(arrays)
        arrays[ref] = obj.matrix
        return {TAG: "calibration_matrix", "qubits": list(obj.qubits), "ref": ref}
    if isinstance(obj, CouplingMap):
        return {
            TAG: "coupling_map",
            "num_qubits": obj.num_qubits,
            "edges": [[a, b] for a, b in obj.edges],
            "name": obj.name,
        }
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and TAG not in obj:
            return {k: encode(v, arrays, options) for k, v in obj.items()}
        return {
            TAG: "kdict",
            "items": [
                [encode(k, arrays, options), encode(v, arrays, options)]
                for k, v in obj.items()
            ],
        }
    # Lazy: calgraph imports the store (artifact keys), so the store can
    # only see calgraph's leaf state module at call time, never at import.
    from repro.calgraph.state import CalNodeState

    if isinstance(obj, CalNodeState):
        return {
            TAG: "calgraph_node_state",
            "name": obj.name,
            "node_kind": obj.kind,
            "qubits": list(obj.qubits),
            "fingerprint": obj.fingerprint,
            "payload": encode(obj.payload, arrays, options),
        }
    raise TypeError(
        f"store codec cannot encode {type(obj).__name__!r}; teach "
        f"repro.store.codecs about it before persisting it"
    )


def decode(obj: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode` given the same array table."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode(v, arrays) for v in obj]
    if isinstance(obj, dict):
        kind = obj.get(TAG)
        if kind is None:
            return {k: decode(v, arrays) for k, v in obj.items()}
        if kind == "tuple":
            return tuple(decode(v, arrays) for v in obj["items"])
        if kind == "ndarray":
            return np.asarray(arrays[obj["ref"]])
        if kind == "calibration_matrix":
            return CalibrationMatrix(
                tuple(obj["qubits"]), np.asarray(arrays[obj["ref"]])
            )
        if kind == "calibration_matrix_sparse":
            qubits = tuple(obj["qubits"])
            m = np.eye(2 ** len(qubits))
            for i, j, value in obj["cells"]:
                m[i, j] = value
            return CalibrationMatrix(qubits, m)
        if kind == "coupling_map":
            return CouplingMap(
                obj["num_qubits"],
                [tuple(e) for e in obj["edges"]],
                name=obj["name"],
            )
        if kind == "kdict":
            return {
                _hashable(decode(k, arrays)): decode(v, arrays)
                for k, v in obj["items"]
            }
        if kind == "calgraph_node_state":
            from repro.calgraph.state import CalNodeState

            return CalNodeState(
                name=obj["name"],
                kind=obj["node_kind"],
                qubits=tuple(obj["qubits"]),
                payload=decode(obj["payload"], arrays),
                fingerprint=obj["fingerprint"],
            )
        raise UnknownCodecTagError(
            f"unknown store codec tag {kind!r}; this artifact was written "
            f"by a newer codec — upgrade the reader or repack the store"
        )
    raise TypeError(f"malformed encoded node of type {type(obj).__name__!r}")


def _non_finite_path(node: Any, path: str = "$") -> Optional[str]:
    """The JSON-path of the first non-finite float under ``node``."""
    if isinstance(node, float) and not math.isfinite(node):
        return path
    if isinstance(node, dict):
        for k, v in node.items():
            if isinstance(k, float) and not math.isfinite(k):
                return f"{path}.<key {k!r}>"
            found = _non_finite_path(v, f"{path}.{k}")
            if found is not None:
                return found
    elif isinstance(node, (list, tuple)):
        for idx, v in enumerate(node):
            found = _non_finite_path(v, f"{path}[{idx}]")
            if found is not None:
                return found
    return None


def strict_dumps(node: Any, **kwargs: Any) -> str:
    """``json.dumps`` with ``allow_nan=False``, refusing non-finite
    floats with a :class:`NonFiniteValueError` that names the offending
    path.  Every canonical-key and record dump goes through here; call
    sites keep their own ``sort_keys``/``separators`` so byte formats
    (journal lines, canonical digests) are untouched."""
    kwargs.setdefault("allow_nan", False)
    try:
        return json.dumps(node, **kwargs)
    except ValueError as exc:
        path = _non_finite_path(node)
        if path is None:
            raise
        raise NonFiniteValueError(
            f"non-finite float at {path} cannot be serialised to "
            f"canonical JSON; drop or sanitise the value before "
            f"persisting it"
        ) from exc


def _hashable(key: Any) -> Any:
    """Decoded kdict keys must be hashable (lists become tuples)."""
    if isinstance(key, list):
        return tuple(_hashable(v) for v in key)
    return key


def deep_equal(a: Any, b: Any) -> bool:
    """Exact structural equality, with arrays compared bit-for-bit.

    The round-trip oracle for the codec's property tests: types must match
    (tuple != list, int key != str key) and every array must be
    ``np.array_equal`` with identical dtype and shape.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype and a.shape == b.shape and np.array_equal(a, b)
        )
    if isinstance(a, CalibrationMatrix):
        return a.qubits == b.qubits and deep_equal(a.matrix, b.matrix)
    if isinstance(a, CouplingMap):
        return a == b and a.name == b.name
    from repro.calgraph.state import CalNodeState

    if isinstance(a, CalNodeState):
        return (
            a.name == b.name
            and a.kind == b.kind
            and a.qubits == b.qubits
            and a.fingerprint == b.fingerprint
            and deep_equal(a.payload, b.payload)
        )
    if isinstance(a, dict):
        if set(a) != set(b):
            return False
        return all(deep_equal(v, b[k]) for k, v in a.items())
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            deep_equal(x, y) for x, y in zip(a, b)
        )
    return a == b
