"""Round-trip codecs between library objects and (JSON, arrays) pairs.

Everything the :class:`~repro.store.artifacts.ArtifactStore` persists goes
through :func:`encode` / :func:`decode`: a tagged, self-describing encoding
that splits a Python object graph into

* a JSON-serialisable *structure* (plain dicts/lists/strings/numbers plus
  ``{"__repro__": <kind>, ...}`` tag nodes), and
* a flat ``{name: ndarray}`` *array table* holding every numeric payload
  verbatim (persisted as one ``.npz`` member per array — lossless binary,
  so round trips are bit-identical, not merely close).

The codec covers exactly the shapes the pipeline needs to persist —
mitigator ``calibration_state()`` dicts, :class:`CalibrationMatrix`,
:class:`CouplingMap`, sweep records — which are built from:

=====================  ===============================================
value                  encoding
=====================  ===============================================
None/bool/int/float    JSON scalar (Python floats round-trip exactly:
str                    ``json`` emits ``repr`` which ``float()`` inverts)
tuple                  ``{"__repro__": "tuple", "items": [...]}``
list                   JSON array
dict (str keys)        JSON object (escaped when it contains the tag key)
dict (any keys)        ``{"__repro__": "kdict", "items": [[k, v], ...]}``
numpy scalar           canonicalised to the Python scalar
numpy ndarray          ``{"__repro__": "ndarray", "ref": name}``
CalibrationMatrix      qubit tuple + matrix array ref
CouplingMap            num_qubits + edge list + name
CalNodeState           name/kind/qubits/fingerprint + encoded payload
=====================  ===============================================

Tuple-vs-list and int-vs-string-key distinctions are preserved because the
calibration states key on qubit tuples and integer qubit indices —
"mostly JSON" encodings that collapse those would load states that *look*
right but miss every dictionary lookup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.core.calibration import CalibrationMatrix
from repro.topology.coupling_map import CouplingMap

__all__ = ["encode", "decode", "deep_equal"]

#: The tag key; a plain dict that happens to contain it is escaped as kdict.
TAG = "__repro__"


def _new_ref(arrays: Dict[str, np.ndarray]) -> str:
    return f"a{len(arrays)}"


def encode(obj: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Encode ``obj`` into a JSON-able structure, filling ``arrays``."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, tuple):
        return {TAG: "tuple", "items": [encode(v, arrays) for v in obj]}
    if isinstance(obj, list):
        return [encode(v, arrays) for v in obj]
    if isinstance(obj, np.ndarray):
        ref = _new_ref(arrays)
        arrays[ref] = obj
        return {TAG: "ndarray", "ref": ref}
    if isinstance(obj, CalibrationMatrix):
        ref = _new_ref(arrays)
        arrays[ref] = obj.matrix
        return {TAG: "calibration_matrix", "qubits": list(obj.qubits), "ref": ref}
    if isinstance(obj, CouplingMap):
        return {
            TAG: "coupling_map",
            "num_qubits": obj.num_qubits,
            "edges": [[a, b] for a, b in obj.edges],
            "name": obj.name,
        }
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and TAG not in obj:
            return {k: encode(v, arrays) for k, v in obj.items()}
        return {
            TAG: "kdict",
            "items": [
                [encode(k, arrays), encode(v, arrays)] for k, v in obj.items()
            ],
        }
    # Lazy: calgraph imports the store (artifact keys), so the store can
    # only see calgraph's leaf state module at call time, never at import.
    from repro.calgraph.state import CalNodeState

    if isinstance(obj, CalNodeState):
        return {
            TAG: "calgraph_node_state",
            "name": obj.name,
            "node_kind": obj.kind,
            "qubits": list(obj.qubits),
            "fingerprint": obj.fingerprint,
            "payload": encode(obj.payload, arrays),
        }
    raise TypeError(
        f"store codec cannot encode {type(obj).__name__!r}; teach "
        f"repro.store.codecs about it before persisting it"
    )


def decode(obj: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode` given the same array table."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode(v, arrays) for v in obj]
    if isinstance(obj, dict):
        kind = obj.get(TAG)
        if kind is None:
            return {k: decode(v, arrays) for k, v in obj.items()}
        if kind == "tuple":
            return tuple(decode(v, arrays) for v in obj["items"])
        if kind == "ndarray":
            return np.asarray(arrays[obj["ref"]])
        if kind == "calibration_matrix":
            return CalibrationMatrix(
                tuple(obj["qubits"]), np.asarray(arrays[obj["ref"]])
            )
        if kind == "coupling_map":
            return CouplingMap(
                obj["num_qubits"],
                [tuple(e) for e in obj["edges"]],
                name=obj["name"],
            )
        if kind == "kdict":
            return {
                _hashable(decode(k, arrays)): decode(v, arrays)
                for k, v in obj["items"]
            }
        if kind == "calgraph_node_state":
            from repro.calgraph.state import CalNodeState

            return CalNodeState(
                name=obj["name"],
                kind=obj["node_kind"],
                qubits=tuple(obj["qubits"]),
                payload=decode(obj["payload"], arrays),
                fingerprint=obj["fingerprint"],
            )
        raise ValueError(f"unknown store codec tag {kind!r}")
    raise TypeError(f"malformed encoded node of type {type(obj).__name__!r}")


def _hashable(key: Any) -> Any:
    """Decoded kdict keys must be hashable (lists become tuples)."""
    if isinstance(key, list):
        return tuple(_hashable(v) for v in key)
    return key


def deep_equal(a: Any, b: Any) -> bool:
    """Exact structural equality, with arrays compared bit-for-bit.

    The round-trip oracle for the codec's property tests: types must match
    (tuple != list, int key != str key) and every array must be
    ``np.array_equal`` with identical dtype and shape.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype and a.shape == b.shape and np.array_equal(a, b)
        )
    if isinstance(a, CalibrationMatrix):
        return a.qubits == b.qubits and deep_equal(a.matrix, b.matrix)
    if isinstance(a, CouplingMap):
        return a == b and a.name == b.name
    from repro.calgraph.state import CalNodeState

    if isinstance(a, CalNodeState):
        return (
            a.name == b.name
            and a.kind == b.kind
            and a.qubits == b.qubits
            and a.fingerprint == b.fingerprint
            and deep_equal(a.payload, b.payload)
        )
    if isinstance(a, dict):
        if set(a) != set(b):
            return False
        return all(deep_equal(v, b[k]) for k, v in a.items())
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            deep_equal(x, y) for x, y in zip(a, b)
        )
    return a == b
