"""Fault injection for store backends: crashes, races and flaky links.

:class:`FaultyBackend` wraps any :class:`~repro.store.backends.StoreBackend`
and misbehaves on cue, so the store stack's crash-safety claims are
*executed*, not narrated:

* **partial** — a ``put_atomic``/``append_line`` writes only a prefix
  (spilled as real crash debris through the inner backend's
  ``spill_partial`` / torn-append path) and then raises
  :class:`BackendCrash`, exactly like a writer killed mid-write.  The
  contract under test: no reader ever observes the half-written object,
  and a resumed sweep is bit-identical to an uninterrupted one.
* **raise** — the op fails *before* touching the backend with a
  :class:`TransientStoreError` (a flaky link); a retry succeeds.
* **after** — the op completes, then the *acknowledgement* is lost
  (raises after the write).  Retries must be idempotent — which
  content-addressed puts and conditional ops are by construction.
* **drop** — the op silently does nothing (a lost, acked write: the
  nastiest storage lie).  Used to prove reads *detect* absence rather
  than assume success.
* **duplicate** — the op runs twice (an at-least-once delivery layer).
* **latency** — the op sleeps first (slow-path scheduling tests).

Faults trigger on the Nth call of a named op (deterministic scripts) or
randomly at a seeded rate (``transient_rate`` — reproducible soak
tests).  Counters are per-op and shared across a wrapper's lifetime, so
a script reads like a crash log: "the 3rd put_atomic dies mid-write".

The conformance suite (``tests/backend_conformance.py``) runs every
backend wrapped in deterministic faults; ``tests/test_store_faults.py``
pins the end-to-end stories (kill mid-put, resume bit-identity).
"""

from __future__ import annotations

import random
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.store.backends import ObjectStat, StoreBackend

__all__ = [
    "TransientStoreError",
    "BackendCrash",
    "Fault",
    "FaultyBackend",
]


class TransientStoreError(ConnectionError):
    """A retryable transport failure (flaky link, 5xx, timeout)."""


class BackendCrash(RuntimeError):
    """The 'process died mid-write' signal: NOT retryable in-process —
    the test harness uses it to stand in for a hard kill."""


_KINDS = ("partial", "raise", "after", "drop", "duplicate", "latency")


@dataclass(frozen=True)
class Fault:
    """One scripted misbehaviour: on the ``nth`` call (1-based) of
    ``op`` (an operation name, or ``"*"`` for any mutating op), do
    ``kind``.  ``fraction`` controls how much of a partial write
    survives; ``delay`` is the latency injected by ``latency``."""

    op: str
    nth: int
    kind: str
    fraction: float = 0.5
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.nth < 1:
            raise ValueError("faults are 1-based: nth >= 1")


#: Ops with write effects — eligible for "*" faults and drop/duplicate.
_MUTATORS = frozenset(
    {"put_atomic", "put_if_absent", "delete", "delete_if_equals",
     "append_line", "truncate"}
)


class FaultyBackend(StoreBackend):
    """A :class:`StoreBackend` that fails on schedule (see module docs).

    ``faults`` is the deterministic script; ``transient_rate`` adds
    seeded random :class:`TransientStoreError` *before* ops (safe to
    retry), so soak tests stay reproducible: same seed, same storms.
    """

    #: Delegating wrapper: the inner backend's ops are already observed
    #: (wrapping both would double-count), and ``scheme`` is a property
    #: here, which the class-creation hook could not label with anyway.
    #: Injected faults are counted at their raise sites instead.
    observe_ops = False

    def __init__(
        self,
        inner: StoreBackend,
        faults: Tuple[Fault, ...] = (),
        transient_rate: float = 0.0,
        seed: Optional[int] = None,
        latency: float = 0.0,
    ) -> None:
        self.inner = inner
        self.faults = tuple(faults)
        self.transient_rate = float(transient_rate)
        self.latency = float(latency)
        self._rng = random.Random(seed)
        self._calls: Dict[str, int] = defaultdict(int)
        self.log: List[str] = []

    # identity passes through: a faulty store is still *that* store
    scheme = property(lambda self: self.inner.scheme)  # type: ignore[assignment]
    packs_artifacts = property(lambda self: self.inner.packs_artifacts)  # type: ignore[assignment]
    cross_process = False  # the wrapper (and its script) is in-process

    @property
    def locator(self) -> str:
        return self.inner.locator

    def __getattr__(self, name: str):
        # Transport-specific extras (LocalDirBackend.root/_path, a
        # client handle, ...) pass through: a faulty store is still
        # *that* store to every caller that duck-types on its family.
        try:
            inner = self.__dict__["inner"]
        except KeyError:  # during __init__, before inner is bound
            raise AttributeError(name) from None
        return getattr(inner, name)

    # ------------------------------------------------------------------
    def _due(self, op: str) -> Optional[Fault]:
        self._calls[op] += 1
        n = self._calls[op]
        for fault in self.faults:
            if fault.op == op and fault.nth == n:
                return fault
            if (
                fault.op == "*"
                and op in _MUTATORS
                and fault.nth == sum(self._calls[m] for m in _MUTATORS)
            ):
                return fault
        return None

    def _enter(
        self, op: str, supported: frozenset = frozenset()
    ) -> Optional[Fault]:
        """Pre-op gate: latency, seeded transients, then the script.

        ``supported`` names the op-specific kinds the caller implements
        (``raise``/``latency`` are handled here for every op).  A
        scripted kind the op cannot inject is a *harness bug* and raises
        loudly — silently no-opping would let a crash test pass without
        ever injecting the crash.
        """
        if self.latency:
            time.sleep(self.latency)
        fault = self._due(op)
        if fault is not None and fault.kind == "latency":
            time.sleep(fault.delay)
            fault = None
        if fault is None and self.transient_rate:
            if self._rng.random() < self.transient_rate:
                self.log.append(f"transient:{op}")
                self._count_injected(op)
                raise TransientStoreError(f"injected transient on {op}")
        if fault is not None and fault.kind == "raise":
            self.log.append(f"raise:{op}")
            self._count_injected(op)
            raise TransientStoreError(f"injected failure before {op}")
        if fault is not None and fault.kind not in supported:
            raise ValueError(
                f"fault kind {fault.kind!r} is not implemented for "
                f"{op} — the scripted crash would silently not happen"
            )
        return fault

    def _count_injected(self, op: str) -> None:
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.counter(
                "repro_backend_faults_total",
                "Store ops that raised, by backend, op and exception kind",
                ("backend", "op", "kind"),
            ).labels(
                backend=self.inner.scheme, op=op, kind="TransientStoreError"
            ).inc()

    # -- blobs ---------------------------------------------------------
    def put_atomic(self, key: str, data: bytes) -> None:
        fault = self._enter(
            "put_atomic", frozenset({"partial", "drop", "duplicate", "after"})
        )
        if fault is not None:
            if fault.kind == "partial":
                cut = max(0, int(len(data) * fault.fraction))
                self.inner.spill_partial(key, data[:cut])
                self.log.append(f"partial:put_atomic:{key}")
                raise BackendCrash(f"killed mid-put_atomic({key!r})")
            if fault.kind == "drop":
                self.log.append(f"drop:put_atomic:{key}")
                return
            if fault.kind == "duplicate":
                self.inner.put_atomic(key, data)
        self.inner.put_atomic(key, data)
        if fault is not None and fault.kind == "after":
            self.log.append(f"after:put_atomic:{key}")
            raise TransientStoreError(f"ack lost after put_atomic({key!r})")

    def put_if_absent(self, key: str, data: bytes) -> bool:
        fault = self._enter("put_if_absent", frozenset({"drop", "after"}))
        if fault is not None and fault.kind == "drop":
            return True  # acked, never stored
        result = self.inner.put_if_absent(key, data)
        if fault is not None and fault.kind == "after":
            raise TransientStoreError(f"ack lost after put_if_absent({key!r})")
        return result

    def get(self, key: str) -> Optional[bytes]:
        self._enter("get")
        return self.inner.get(key)

    def get_range(self, key: str, start: int, length: int) -> Optional[bytes]:
        self._enter("get_range")
        return self.inner.get_range(key, start, length)

    def exists(self, key: str) -> bool:
        self._enter("exists")
        return self.inner.exists(key)

    def stat(self, key: str) -> Optional[ObjectStat]:
        self._enter("stat")
        return self.inner.stat(key)

    def list_prefix(self, prefix: str) -> List[str]:
        self._enter("list_prefix")
        return self.inner.list_prefix(prefix)

    def delete(self, key: str) -> int:
        fault = self._enter("delete", frozenset({"drop", "after"}))
        if fault is not None and fault.kind == "drop":
            return 0
        freed = self.inner.delete(key)
        if fault is not None and fault.kind == "after":
            raise TransientStoreError(f"ack lost after delete({key!r})")
        return freed

    def delete_if_equals(self, key: str, expect: bytes) -> bool:
        fault = self._enter("delete_if_equals", frozenset({"drop"}))
        if fault is not None and fault.kind == "drop":
            return False
        return self.inner.delete_if_equals(key, expect)

    # -- journal streams ----------------------------------------------
    def append_line(self, key: str, data: bytes) -> None:
        fault = self._enter(
            "append_line", frozenset({"partial", "drop", "duplicate", "after"})
        )
        if fault is not None:
            if fault.kind == "partial":
                # A torn append: a prefix of the line lands with no
                # newline — exactly the fragment follow()/replay must
                # withhold and the next writer must repair.
                cut = max(0, int(len(data) * fault.fraction))
                torn = data[:cut].rstrip(b"\n")
                if torn:
                    self.inner.append_line(key, torn)
                self.log.append(f"partial:append_line:{key}")
                raise BackendCrash(f"killed mid-append_line({key!r})")
            if fault.kind == "drop":
                return
            if fault.kind == "duplicate":
                self.inner.append_line(key, data)
        self.inner.append_line(key, data)
        if fault is not None and fault.kind == "after":
            raise TransientStoreError(f"ack lost after append_line({key!r})")

    def read_from(
        self, key: str, offset: int, limit: Optional[int] = None
    ) -> Optional[Tuple[bytes, int]]:
        self._enter("read_from")
        return self.inner.read_from(key, offset, limit)

    def truncate(self, key: str, size: int) -> None:
        fault = self._enter("truncate", frozenset({"drop"}))
        if fault is not None and fault.kind == "drop":
            return
        self.inner.truncate(key, size)

    # -- crash debris --------------------------------------------------
    def partial_keys(self, prefix: str) -> List[str]:
        return self.inner.partial_keys(prefix)

    def spill_partial(self, key: str, data: bytes) -> None:
        self.inner.spill_partial(key, data)
