"""Store transport backends: the contract under every `ArtifactStore`.

A :class:`StoreBackend` is a flat, key-addressed blob space with exactly
the primitives the store layer needs — and nothing filesystem-shaped.
Keys are ``/``-separated relative names (``objects/ab/<digest>.json``,
``journals/<digest16>.jsonl``); values are bytes.  Three families of
operations:

**Blobs** — ``put_atomic`` (all-or-nothing publish: a reader can never
observe a partial object), ``put_if_absent`` / ``delete_if_equals``
(the conditional pair leases and commit markers are built from), ``get``
/ ``exists`` / ``stat`` / ``list_prefix`` / ``delete``.

**Journal streams** — ``append_line`` (durable append), ``read_from``
(offset tail for :meth:`~repro.store.journal.SweepJournal.follow`),
``truncate`` (torn-tail repair).

**Crash debris** — ``partial_keys`` enumerates half-written litter a
killed writer can leave behind (``spill_partial`` plants exactly that
litter, so fault injection and gc agree about what a crash looks like).

The behavioural contract — atomic-commit visibility, torn-append
withholding, conditional-op semantics, gc-safe debris accounting,
bit-exact round-trips — is pinned by the backend-agnostic suite in
``tests/backend_conformance.py``; every backend (including wrapped-in-
faults variants) must pass it unchanged.  A new transport (real S3,
redis) is certified by passing the same suite, not by re-review of its
callers.

Backends:

* :class:`LocalDirBackend` — today's on-disk semantics (same-directory
  temp file + ``os.replace``, fsync before publish), extracted verbatim
  from the pre-backend ``ArtifactStore``.  Layout on disk is unchanged:
  existing store directories keep working.
* :class:`MemoryBackend` — a named, process-local dict (``mem://name``);
  all connections to one name share state, so tests and ephemeral sweeps
  get store semantics without touching disk.
* :class:`ObjectStoreBackend` — S3/GCS-shaped: every key is one object,
  writes are whole-object puts (atomic by construction), conditional
  puts implement leases and commit markers, listing is by prefix.  The
  client is injectable (:class:`FakeObjectClient` for CI — no cloud, no
  extra dependency); a real ``boto3``/GCS adapter only needs the six
  client methods.
"""

from __future__ import annotations

import abc
import functools
import itertools
import os
import pathlib
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.store.locator import StoreLocator, parse_store_locator

__all__ = [
    "ObjectStat",
    "StoreBackend",
    "LocalDirBackend",
    "MemoryBackend",
    "ObjectStoreBackend",
    "FakeObjectClient",
    "PrefixBackend",
    "open_backend",
    "set_default_object_client",
    "reset_memory_spaces",
]


@dataclass(frozen=True)
class ObjectStat:
    """One stored object's metadata: byte size and modification time."""

    size: int
    mtime: float


#: The transport ops observed by the class-creation hook below: every
#: public primitive with a latency worth a histogram.  ``partial_keys``
#: and ``spill_partial`` are crash-debris bookkeeping, not hot paths.
_OBSERVED_OPS = (
    "put_atomic",
    "put_if_absent",
    "get",
    "get_range",
    "exists",
    "stat",
    "list_prefix",
    "delete",
    "delete_if_equals",
    "append_line",
    "read_from",
    "truncate",
)


def _observed(scheme: str, op: str, fn):
    """Wrap one transport op with latency/count/fault instrumentation.

    Pure observer: same call, same return, same raise — the wrapper adds
    a counter bump and a histogram sample when telemetry is enabled, and
    a single ``None`` check when it is not.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        telemetry = obs.active()
        if telemetry is None:
            return fn(self, *args, **kwargs)
        start = time.perf_counter()
        try:
            return fn(self, *args, **kwargs)
        except Exception as exc:
            telemetry.counter(
                "repro_backend_faults_total",
                "Store ops that raised, by backend, op and exception kind",
                ("backend", "op", "kind"),
            ).labels(backend=scheme, op=op, kind=type(exc).__name__).inc()
            raise
        finally:
            telemetry.counter(
                "repro_backend_ops_total",
                "Store transport operations",
                ("backend", "op"),
            ).labels(backend=scheme, op=op).inc()
            telemetry.histogram(
                "repro_backend_op_seconds",
                "Store transport op latency (seconds)",
                ("backend", "op"),
            ).labels(backend=scheme, op=op).observe(
                time.perf_counter() - start
            )

    wrapper._observed_op = True
    return wrapper


def _count_fsync() -> None:
    """One durable-flush bump (LocalDirBackend calls this per os.fsync)."""
    telemetry = obs.active()
    if telemetry is not None:
        telemetry.counter(
            "repro_journal_fsyncs_total",
            "fsync calls made for durable writes and journal appends",
        ).inc()


class StoreBackend(abc.ABC):
    """Transport contract for one store (see module docs for semantics)."""

    #: Locator scheme this backend answers to.
    scheme: str = "?"
    #: Does this backend pack an artifact's JSON record and array payload
    #: into one object (single-key blobs, conditional-put commit marker)?
    #: Object stores do; file-shaped backends keep the two-file layout.
    packs_artifacts: bool = False
    #: Can a *different process* open the same locator and see this
    #: state?  Directories can; in-memory spaces and injected in-process
    #: clients cannot — the engine keeps such stores in-process instead
    #: of fanning out to a pool that would see an empty store.
    cross_process: bool = True
    #: Subclasses set this ``False`` to opt out of op instrumentation —
    #: delegating views (:class:`PrefixBackend`) and test wrappers
    #: (:class:`~repro.store.faults.FaultyBackend`) forward to an inner
    #: backend whose own ops are already observed; wrapping both would
    #: double-count every operation.
    observe_ops: bool = True

    def __init_subclass__(cls, **kwargs) -> None:
        """Instrument every concrete transport's ops at class-creation
        time: latency histogram + op counter + fault counter, labelled by
        ``(backend scheme, op)``.  One hook here instead of N edits per
        transport — a future backend is observed by existing.  With
        telemetry disabled the wrapper costs one global read and a
        ``None`` check (the `BENCH_obs.json` overhead gate covers it)."""
        super().__init_subclass__(**kwargs)
        if not cls.__dict__.get("observe_ops", getattr(cls, "observe_ops", True)):
            return
        for op in _OBSERVED_OPS:
            fn = cls.__dict__.get(op)
            if fn is not None and not getattr(fn, "_observed_op", False):
                setattr(cls, op, _observed(cls.scheme, op, fn))

    # -- identity ------------------------------------------------------
    @property
    @abc.abstractmethod
    def locator(self) -> str:
        """Canonical locator string reopening this backend."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.locator!r})"

    # -- blobs ---------------------------------------------------------
    @abc.abstractmethod
    def put_atomic(self, key: str, data: bytes) -> None:
        """Publish ``data`` at ``key`` all-or-nothing: a concurrent or
        later reader sees the previous value (or absence) or the new
        value, never a prefix.  Overwrite is last-writer-wins."""

    @abc.abstractmethod
    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Atomically create ``key`` with ``data`` iff it does not exist.
        ``True`` on creation, ``False`` (no write) when present."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[bytes]:
        """The object's bytes, or ``None`` when absent."""

    def get_range(
        self, key: str, start: int, length: int
    ) -> Optional[bytes]:
        """Bytes ``[start, start+length)`` of the object at ``key``, or
        ``None`` when absent.  A range past the end returns the short
        (possibly empty) tail — callers detect truncation from the
        returned length, mirroring HTTP range-request semantics.  The
        default fetches the whole object and slices; backends with a
        cheap ranged read (seek, ``Range:`` header) override it so
        header probes never download gigabyte payloads."""
        data = self.get(key)
        if data is None:
            return None
        return data[start:start + length]

    @abc.abstractmethod
    def exists(self, key: str) -> bool: ...

    @abc.abstractmethod
    def stat(self, key: str) -> Optional[ObjectStat]: ...

    @abc.abstractmethod
    def list_prefix(self, prefix: str) -> List[str]:
        """Sorted keys of *committed* objects matching the **raw string**
        prefix — ``objects/a`` matches ``objects/ab/x.json``, exactly as
        object stores list (crash debris is enumerated by
        :meth:`partial_keys`, never here).  Identical answers on every
        backend; pinned in the conformance suite."""

    @abc.abstractmethod
    def delete(self, key: str) -> int:
        """Remove ``key`` if present; bytes freed (0 when absent)."""

    @abc.abstractmethod
    def delete_if_equals(self, key: str, expect: bytes) -> bool:
        """Atomically remove ``key`` iff its content equals ``expect``.
        The lease-reclaim primitive: of N racers stealing one stale lock,
        at most one succeeds."""

    # -- journal streams ----------------------------------------------
    @abc.abstractmethod
    def append_line(self, key: str, data: bytes) -> None:
        """Durably append ``data`` (caller includes the newline) to the
        stream at ``key``, creating it if missing."""

    @abc.abstractmethod
    def read_from(
        self, key: str, offset: int, limit: Optional[int] = None
    ) -> Optional[Tuple[bytes, int]]:
        """``(bytes from offset, total size)``, or ``None`` when absent.
        An ``offset`` past the end returns ``(b"", size)`` — the caller
        detects truncation from ``size < offset`` and re-reads.
        ``limit`` caps the bytes returned (the *size* is still the whole
        stream's), so header probes need not fetch megabyte journals on
        backends that can serve a range."""

    @abc.abstractmethod
    def truncate(self, key: str, size: int) -> None:
        """Shrink the stream at ``key`` to ``size`` bytes (torn-tail
        repair; no-op when already shorter or absent)."""

    # -- crash debris --------------------------------------------------
    @abc.abstractmethod
    def partial_keys(self, prefix: str) -> List[str]:
        """Sorted keys of half-written debris under ``prefix`` — litter a
        killed writer left behind.  ``prefix`` is a *directory* prefix
        (``""`` or ``"objects/"``): debris keys are backend-mangled
        spellings of their target key, so key-granular prefixes are not
        meaningful here.  ``stat``/``delete`` accept these keys
        (that is how gc ages and drops them); ``get``/``list_prefix``
        never surface them."""

    @abc.abstractmethod
    def spill_partial(self, key: str, data: bytes) -> None:
        """Leave exactly the debris a writer killed mid-``put_atomic`` of
        ``key`` would leave.  Used by the fault injector so 'crashed'
        stores look the way real crashed stores look — and so the
        conformance suite can prove gc accounts for them."""


# ----------------------------------------------------------------------
# Local directory backend
# ----------------------------------------------------------------------
class LocalDirBackend(StoreBackend):
    """A directory as a blob space — today's on-disk store, verbatim.

    Keys map to paths under ``root``; publishes go through a
    same-directory temp file, fsync, then ``os.replace`` (atomic on
    POSIX).  Conditional creates use the write-private-then-``os.link``
    trick so a visible object always carries its full content.
    """

    scheme = "dir"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)

    @property
    def locator(self) -> str:
        return str(StoreLocator("dir", str(self.root)))

    def _path(self, key: str) -> pathlib.Path:
        return self.root.joinpath(*key.split("/"))

    # -- blobs ---------------------------------------------------------
    def put_atomic(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            _count_fsync()
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def put_if_absent(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            _count_fsync()
            try:
                os.link(tmp_name, path)  # atomic, fails-if-exists
                return True
            except FileExistsError:
                return False
        finally:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key).read_bytes()
        except (FileNotFoundError, IsADirectoryError):
            return None

    def get_range(
        self, key: str, start: int, length: int
    ) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as fh:
                fh.seek(start)
                return fh.read(length)
        except (FileNotFoundError, IsADirectoryError):
            return None

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def stat(self, key: str) -> Optional[ObjectStat]:
        try:
            st = self._path(key).stat()
        except FileNotFoundError:
            return None
        return ObjectStat(size=st.st_size, mtime=st.st_mtime)

    def _walk_base(self, prefix: str) -> pathlib.Path:
        """The directory to scan for ``prefix`` — its deepest complete
        segment.  Prefixes are *raw string* prefixes (``objects/a``
        matches ``objects/ab/x.json``), matching the object-store
        backends; the filesystem layout is an implementation detail the
        contract must not leak."""
        head, _, _ = prefix.rpartition("/")
        return self._path(head) if head else self.root

    def list_prefix(self, prefix: str) -> List[str]:
        base = self._walk_base(prefix)
        if not base.is_dir():
            return []
        out = []
        for path in base.rglob("*"):
            if path.is_file() and not path.name.startswith("."):
                key = "/".join(path.relative_to(self.root).parts)
                if key.startswith(prefix):
                    out.append(key)
        return sorted(out)

    def delete(self, key: str) -> int:
        path = self._path(key)
        try:
            size = path.stat().st_size
            path.unlink()
            return size
        except FileNotFoundError:
            return 0

    def delete_if_equals(self, key: str, expect: bytes) -> bool:
        # Compare-and-unlink under a per-key flock mutex.  A
        # rename-compare-restore dance would make the object *transiently
        # vanish* (a racing put_if_absent could then create a second live
        # lease) — the exact violation this primitive exists to prevent.
        # The mutex only serialises the conditional ops against each
        # other; put_if_absent stays os.link-atomic and needs no mutex
        # (it can never remove or mutate an existing object, so the
        # read-compare-unlink below is indivisible with respect to it).
        # Mixing *unconditional* overwrite (put_atomic) with conditional
        # delete on one key is outside the contract — leases never do.
        import fcntl

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The mutex file persists (unlinking it would let a late opener
        # lock a fresh inode while an old holder still locks the orphan
        # — two mutexes, no exclusion).  One tiny dotfile per lock key;
        # invisible to list_prefix/partial_keys/gc.
        mutex = path.with_name(f".{path.name}.mutex")
        with open(mutex, "a+b") as mfh:
            fcntl.flock(mfh.fileno(), fcntl.LOCK_EX)
            try:
                try:
                    content = path.read_bytes()
                except FileNotFoundError:
                    return False
                if content != expect:
                    return False
                path.unlink()
                return True
            finally:
                fcntl.flock(mfh.fileno(), fcntl.LOCK_UN)

    # -- journal streams ----------------------------------------------
    def append_line(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
            _count_fsync()

    def read_from(
        self, key: str, offset: int, limit: Optional[int] = None
    ) -> Optional[Tuple[bytes, int]]:
        try:
            with open(self._path(key), "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(min(offset, size))
                data = fh.read() if limit is None else fh.read(limit)
                return data, size
        except FileNotFoundError:
            return None

    def truncate(self, key: str, size: int) -> None:
        try:
            with open(self._path(key), "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > size:
                    fh.truncate(size)
        except FileNotFoundError:
            pass

    # -- crash debris --------------------------------------------------
    def partial_keys(self, prefix: str) -> List[str]:
        base = self._walk_base(prefix)
        if not base.is_dir():
            return []
        out = []
        for path in base.rglob(".*.tmp"):
            if path.is_file():
                key = "/".join(path.relative_to(self.root).parts)
                # debris keys carry a dot-prefixed final segment; match
                # the caller's prefix against the directory part
                if key.rpartition("/")[0].startswith(prefix.rstrip("/")):
                    out.append(key)
        return sorted(out)

    def spill_partial(self, key: str, data: bytes) -> None:
        # Exactly what a kill mid-put_atomic leaves: the temp file, no
        # rename, destination untouched.
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)


# ----------------------------------------------------------------------
# In-memory backend
# ----------------------------------------------------------------------
class _MemSpace:
    """One named in-process blob space: ``{key: (bytes, mtime)}``."""

    def __init__(self) -> None:
        self.objects: Dict[str, Tuple[bytes, float]] = {}
        self.lock = threading.RLock()


_MEM_SPACES: Dict[str, _MemSpace] = {}
_MEM_REGISTRY_LOCK = threading.Lock()

#: Debris marker for non-filesystem backends: a partial write lands at
#: ``<key>{_PART_SEP}<n>`` and is invisible to get/list_prefix.
_PART_SEP = "#part-"


def reset_memory_spaces(name: Optional[str] = None) -> None:
    """Drop one named ``mem://`` space (or all of them).  Test isolation:
    spaces are process-global by design, so suites clear them between
    cases instead of leaking state across tests."""
    with _MEM_REGISTRY_LOCK:
        if name is None:
            _MEM_SPACES.clear()
        else:
            _MEM_SPACES.pop(name, None)


class MemoryBackend(StoreBackend):
    """A named, process-local, thread-safe blob space (``mem://name``).

    Every ``MemoryBackend("x")`` in one process shares the same space —
    stores survive reopening by locator, which is what resume/warm-rerun
    semantics require — but nothing crosses a process boundary, so the
    engine keeps ``mem://`` sweeps in-process (see
    :attr:`StoreBackend.cross_process`).
    """

    scheme = "mem"
    cross_process = False

    def __init__(self, name: str) -> None:
        StoreLocator("mem", name)  # validate the name shape
        self.name = name
        with _MEM_REGISTRY_LOCK:
            self._space = _MEM_SPACES.setdefault(name, _MemSpace())
        self._parts = itertools.count()

    @property
    def locator(self) -> str:
        return f"mem://{self.name}"

    # -- blobs ---------------------------------------------------------
    def put_atomic(self, key: str, data: bytes) -> None:
        with self._space.lock:
            self._space.objects[key] = (bytes(data), time.time())

    def put_if_absent(self, key: str, data: bytes) -> bool:
        with self._space.lock:
            if key in self._space.objects:
                return False
            self._space.objects[key] = (bytes(data), time.time())
            return True

    def get(self, key: str) -> Optional[bytes]:
        with self._space.lock:
            entry = self._space.objects.get(key)
            return None if entry is None else entry[0]

    def exists(self, key: str) -> bool:
        with self._space.lock:
            return key in self._space.objects

    def stat(self, key: str) -> Optional[ObjectStat]:
        with self._space.lock:
            entry = self._space.objects.get(key)
            if entry is None:
                return None
            return ObjectStat(size=len(entry[0]), mtime=entry[1])

    def list_prefix(self, prefix: str) -> List[str]:
        with self._space.lock:
            return sorted(
                k for k in self._space.objects
                if k.startswith(prefix) and _PART_SEP not in k
            )

    def delete(self, key: str) -> int:
        with self._space.lock:
            entry = self._space.objects.pop(key, None)
            return 0 if entry is None else len(entry[0])

    def delete_if_equals(self, key: str, expect: bytes) -> bool:
        with self._space.lock:
            entry = self._space.objects.get(key)
            if entry is None or entry[0] != expect:
                return False
            del self._space.objects[key]
            return True

    # -- journal streams ----------------------------------------------
    def append_line(self, key: str, data: bytes) -> None:
        with self._space.lock:
            old = self._space.objects.get(key, (b"", 0.0))[0]
            self._space.objects[key] = (old + bytes(data), time.time())

    def read_from(
        self, key: str, offset: int, limit: Optional[int] = None
    ) -> Optional[Tuple[bytes, int]]:
        with self._space.lock:
            entry = self._space.objects.get(key)
            if entry is None:
                return None
            data = entry[0]
            start = min(offset, len(data))
            end = len(data) if limit is None else start + limit
            return data[start:end], len(data)

    def truncate(self, key: str, size: int) -> None:
        with self._space.lock:
            entry = self._space.objects.get(key)
            if entry is not None and len(entry[0]) > size:
                self._space.objects[key] = (entry[0][:size], time.time())

    # -- crash debris --------------------------------------------------
    def partial_keys(self, prefix: str) -> List[str]:
        with self._space.lock:
            return sorted(
                k for k in self._space.objects
                if k.startswith(prefix) and _PART_SEP in k
            )

    def spill_partial(self, key: str, data: bytes) -> None:
        with self._space.lock:
            part = f"{key}{_PART_SEP}{next(self._parts)}"
            self._space.objects[part] = (bytes(data), time.time())


# ----------------------------------------------------------------------
# Object-store backend (S3/GCS-shaped, injectable client)
# ----------------------------------------------------------------------
class FakeObjectClient:
    """In-process stand-in for an S3/GCS client — the injectable seam.

    Implements the six calls :class:`ObjectStoreBackend` needs with the
    semantics real object stores offer: whole-object puts, conditional
    put (``If-None-Match: *``), conditional delete (ETag match — the
    fake compares bodies, which is equivalent for full-body ETags),
    prefix listing — plus the *optional* ranged GET
    (:meth:`get_object_range`, a ``Range:`` header in real clients)
    that lets metadata listings skip whole-payload downloads; adapters
    without it still conform, at whole-object cost.  CI runs the whole
    conformance suite against this, so a real client adapter only has
    to match this surface.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, Dict[str, Tuple[bytes, float]]] = {}
        self._lock = threading.RLock()

    def _bucket(self, bucket: str) -> Dict[str, Tuple[bytes, float]]:
        return self._buckets.setdefault(bucket, {})

    def put_object(
        self, bucket: str, key: str, body: bytes, if_none_match: bool = False
    ) -> bool:
        with self._lock:
            objs = self._bucket(bucket)
            if if_none_match and key in objs:
                return False
            objs[key] = (bytes(body), time.time())
            return True

    def get_object(self, bucket: str, key: str) -> Optional[bytes]:
        with self._lock:
            entry = self._bucket(bucket).get(key)
            return None if entry is None else entry[0]

    def get_object_range(
        self, bucket: str, key: str, start: int, length: int
    ) -> Optional[bytes]:
        """A ranged GET (``Range: bytes=start-``); past-the-end ranges
        return the short tail, as object stores do."""
        with self._lock:
            entry = self._bucket(bucket).get(key)
            if entry is None:
                return None
            return entry[0][start:start + length]

    def head_object(self, bucket: str, key: str) -> Optional[Tuple[int, float]]:
        with self._lock:
            entry = self._bucket(bucket).get(key)
            return None if entry is None else (len(entry[0]), entry[1])

    def list_objects(self, bucket: str, prefix: str) -> List[str]:
        with self._lock:
            return sorted(
                k for k in self._bucket(bucket) if k.startswith(prefix)
            )

    def delete_object(self, bucket: str, key: str) -> int:
        with self._lock:
            entry = self._bucket(bucket).pop(key, None)
            return 0 if entry is None else len(entry[0])

    def delete_object_if_match(
        self, bucket: str, key: str, body: bytes
    ) -> bool:
        with self._lock:
            entry = self._bucket(bucket).get(key)
            if entry is None or entry[0] != body:
                return False
            del self._bucket(bucket)[key]
            return True


#: Process-wide default client factory for ``s3://`` locators opened
#: without an explicit ``client=`` (the CLI path).  ``None`` means
#: opening ``s3://`` raises with instructions — this repo ships no cloud
#: SDK, so there is no silent network default to misconfigure.
_DEFAULT_OBJECT_CLIENT = None


def set_default_object_client(client) -> None:
    """Install (or, with ``None``, clear) the client ``s3://`` locators
    resolve to when none is passed explicitly.  Tests and the CI smoke
    job install a :class:`FakeObjectClient`; a deployment would install
    its boto3/GCS adapter here once at start-up."""
    global _DEFAULT_OBJECT_CLIENT
    _DEFAULT_OBJECT_CLIENT = client


class ObjectStoreBackend(StoreBackend):
    """S3/GCS-style transport: every key is one whole object.

    Writes are single-object puts — atomic by construction on real
    object stores, so :meth:`put_atomic` needs no temp-and-rename dance.
    :meth:`put_if_absent` is a conditional put (``If-None-Match``) and
    :meth:`delete_if_equals` a conditional delete; together they carry
    the journal lease and the artifact commit marker.  Appending is
    read-modify-write (journal writers are serialised by the lease, so
    this is single-writer by contract).  ``packs_artifacts`` is set: the
    store layer writes one packed object per artifact instead of a
    ``.json``/``.npz`` pair, so commit is one conditional put and gc is
    one prefix listing.
    """

    scheme = "s3"
    packs_artifacts = True
    #: Clients are injected in-process (a fake in CI, an SDK adapter in a
    #: deployment); a forked pool worker would not inherit one, so the
    #: engine keeps object-store sweeps in-process.  A deployment whose
    #: workers construct their own client can subclass and flip this.
    cross_process = False

    def __init__(
        self, bucket: str, prefix: str = "", client=None
    ) -> None:
        if client is None:
            client = _DEFAULT_OBJECT_CLIENT
        if client is None:
            raise ValueError(
                f"s3://{bucket}: no object-store client configured; pass "
                f"client= or repro.store.backends.set_default_object_client()"
            )
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self.client = client
        self._parts = itertools.count()

    @property
    def locator(self) -> str:
        path = f"{self.bucket}/{self.prefix}" if self.prefix else self.bucket
        return f"s3://{path}"

    def _k(self, key: str) -> str:
        return f"{self.prefix}/{key}" if self.prefix else key

    # -- blobs ---------------------------------------------------------
    def put_atomic(self, key: str, data: bytes) -> None:
        self.client.put_object(self.bucket, self._k(key), data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        return self.client.put_object(
            self.bucket, self._k(key), data, if_none_match=True
        )

    def get(self, key: str) -> Optional[bytes]:
        return self.client.get_object(self.bucket, self._k(key))

    def get_range(
        self, key: str, start: int, length: int
    ) -> Optional[bytes]:
        # Ranged GET where the client offers one; a minimal adapter
        # without it falls back to the whole-object read.
        ranged = getattr(self.client, "get_object_range", None)
        if ranged is not None:
            return ranged(self.bucket, self._k(key), start, length)
        data = self.get(key)
        if data is None:
            return None
        return data[start:start + length]

    def exists(self, key: str) -> bool:
        return self.client.head_object(self.bucket, self._k(key)) is not None

    def stat(self, key: str) -> Optional[ObjectStat]:
        head = self.client.head_object(self.bucket, self._k(key))
        if head is None:
            return None
        return ObjectStat(size=head[0], mtime=head[1])

    def list_prefix(self, prefix: str) -> List[str]:
        full = self._k(prefix)
        strip = len(self._k(""))
        return sorted(
            k[strip:]
            for k in self.client.list_objects(self.bucket, full)
            if _PART_SEP not in k
        )

    def delete(self, key: str) -> int:
        return self.client.delete_object(self.bucket, self._k(key))

    def delete_if_equals(self, key: str, expect: bytes) -> bool:
        return self.client.delete_object_if_match(
            self.bucket, self._k(key), expect
        )

    # -- journal streams ----------------------------------------------
    def append_line(self, key: str, data: bytes) -> None:
        old = self.get(key) or b""
        self.put_atomic(key, old + data)

    def read_from(
        self, key: str, offset: int, limit: Optional[int] = None
    ) -> Optional[Tuple[bytes, int]]:
        # one whole-object GET regardless — object stores have no cheap
        # tail; the limit only trims what travels further up
        data = self.get(key)
        if data is None:
            return None
        start = min(offset, len(data))
        end = len(data) if limit is None else start + limit
        return data[start:end], len(data)

    def truncate(self, key: str, size: int) -> None:
        data = self.get(key)
        if data is not None and len(data) > size:
            self.put_atomic(key, data[:size])

    # -- crash debris --------------------------------------------------
    def partial_keys(self, prefix: str) -> List[str]:
        full = self._k(prefix)
        strip = len(self._k(""))
        return sorted(
            k[strip:]
            for k in self.client.list_objects(self.bucket, full)
            if _PART_SEP in k
        )

    def spill_partial(self, key: str, data: bytes) -> None:
        # A killed multipart upload leaves an uncommitted part; model it
        # as a marked sibling object so gc can age and drop it.
        part = f"{key}{_PART_SEP}{next(self._parts)}"
        self.client.put_object(self.bucket, self._k(part), data)


# ----------------------------------------------------------------------
# Key-prefix view (tenancy namespacing)
# ----------------------------------------------------------------------
class PrefixBackend(StoreBackend):
    """A view of another backend with every key under a fixed prefix.

    The whole store stack is key-addressed (artifacts, journals, leases),
    so a prefix view *is* an isolated store: the sweep service uses it to
    namespace each tenant under ``tenants/<id>/`` on any transport
    without the journal/queue/artifact layers knowing tenancy exists.

    The view's :attr:`locator` extends the inner path for ``dir`` and
    ``s3`` backends (a pool or fleet worker can reopen the namespaced
    subtree by locator); ``mem://`` spaces have no path hierarchy, so a
    prefixed memory view keeps the inner locator and — like the inner
    space itself — stays process-local (``cross_process`` is False).
    """

    observe_ops = False  # pure delegation; the inner backend is observed

    def __init__(self, inner: StoreBackend, prefix: str) -> None:
        if not prefix or not prefix.endswith("/"):
            raise ValueError(f"prefix must end with '/': {prefix!r}")
        if prefix.startswith("/") or ".." in prefix.split("/"):
            raise ValueError(f"unsafe key prefix: {prefix!r}")
        self.inner = inner
        self.prefix = prefix

    scheme = property(lambda self: self.inner.scheme)  # type: ignore[assignment]
    packs_artifacts = property(lambda self: self.inner.packs_artifacts)  # type: ignore[assignment]

    @property
    def cross_process(self) -> bool:  # type: ignore[override]
        # reopenable-by-locator requires a path scheme to extend
        return self.inner.cross_process and self.inner.scheme in ("dir", "s3")

    @property
    def locator(self) -> str:
        inner = self.inner.locator
        if self.inner.scheme in ("dir", "s3"):
            return inner.rstrip("/") + "/" + self.prefix.rstrip("/")
        return inner  # mem://: no path hierarchy to extend

    def _k(self, key: str) -> str:
        return self.prefix + key

    def _strip(self, keys: List[str]) -> List[str]:
        n = len(self.prefix)
        return [k[n:] for k in keys]

    # -- blobs ---------------------------------------------------------
    def put_atomic(self, key: str, data: bytes) -> None:
        self.inner.put_atomic(self._k(key), data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        return self.inner.put_if_absent(self._k(key), data)

    def get(self, key: str) -> Optional[bytes]:
        return self.inner.get(self._k(key))

    def get_range(
        self, key: str, start: int, length: int
    ) -> Optional[bytes]:
        return self.inner.get_range(self._k(key), start, length)

    def exists(self, key: str) -> bool:
        return self.inner.exists(self._k(key))

    def stat(self, key: str) -> Optional[ObjectStat]:
        return self.inner.stat(self._k(key))

    def list_prefix(self, prefix: str) -> List[str]:
        return self._strip(self.inner.list_prefix(self._k(prefix)))

    def delete(self, key: str) -> int:
        return self.inner.delete(self._k(key))

    def delete_if_equals(self, key: str, expect: bytes) -> bool:
        return self.inner.delete_if_equals(self._k(key), expect)

    # -- journal streams ----------------------------------------------
    def append_line(self, key: str, data: bytes) -> None:
        self.inner.append_line(self._k(key), data)

    def read_from(
        self, key: str, offset: int, limit: Optional[int] = None
    ) -> Optional[Tuple[bytes, int]]:
        return self.inner.read_from(self._k(key), offset, limit)

    def truncate(self, key: str, size: int) -> None:
        self.inner.truncate(self._k(key), size)

    # -- crash debris --------------------------------------------------
    def partial_keys(self, prefix: str) -> List[str]:
        return self._strip(self.inner.partial_keys(self._k(prefix)))

    def spill_partial(self, key: str, data: bytes) -> None:
        self.inner.spill_partial(self._k(key), data)


# ----------------------------------------------------------------------
# Locator -> backend
# ----------------------------------------------------------------------
def open_backend(
    locator: Union[str, os.PathLike, StoreLocator, StoreBackend],
    client=None,
) -> StoreBackend:
    """Resolve a locator (or pass a live backend through) to a backend.

    ``client`` only applies to ``s3://`` locators; ``dir``/``mem``
    locators reject it loudly rather than ignoring it.
    """
    if isinstance(locator, StoreBackend):
        return locator
    if not isinstance(locator, StoreLocator):
        locator = parse_store_locator(locator)
    if locator.scheme == "s3":
        return ObjectStoreBackend(
            locator.bucket, locator.prefix, client=client
        )
    if client is not None:
        raise ValueError(
            f"client= only applies to s3:// locators, not {locator}"
        )
    if locator.scheme == "mem":
        return MemoryBackend(locator.path)
    return LocalDirBackend(locator.path)
