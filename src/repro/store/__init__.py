"""Persistent artifact store: durable calibrations, resumable sweeps.

The repo's fourth subsystem.  The paper's operational claim (§V, §VII-A)
is that calibration is the dominant *recurring* cost and stays valid for
hours — worth persisting across processes, not just memoizing within one.
This package makes everything the pipeline measures durable, over a
**pluggable transport**:

* :class:`~repro.store.backends.StoreBackend` — the transport contract
  (atomic puts, conditional put/delete, prefix listing, journal streams,
  crash-debris accounting), with three implementations selected by
  URL-style locator: ``dir:///path`` (or any plain path),
  ``mem://name`` and ``s3://bucket/prefix`` (injectable client — see
  :func:`~repro.store.backends.set_default_object_client`).  The
  contract is pinned by the backend-agnostic conformance suite in
  ``tests/backend_conformance.py``; new transports are certified by
  passing it, including under fault injection
  (:class:`~repro.store.faults.FaultyBackend`).
* :class:`~repro.store.artifacts.ArtifactStore` — a content-addressed
  store (canonical-JSON key → SHA-256 address; commit-marker writes;
  packed single-object artifacts on object stores) with bit-exact
  round-trip codecs for calibration matrices, mitigator states, coupling
  maps and sweep records (:mod:`repro.store.codecs`);
* :class:`~repro.store.journal.SweepJournal` — an append-only JSONL log of
  completed sweep tasks, so ``run_sweep(spec, store=..., resume=True)``
  restarts a crashed grid exactly where it stopped, bit-identical to an
  uninterrupted run; guarded by a backend-held lease;
* :class:`~repro.store.calcache.PersistentCalibrationCache` — the
  in-memory :class:`~repro.pipeline.cache.CalibrationCache` with the store
  as a second tier, making a warm grid rerun skip **every** calibration
  execution while provably reporting the same method errors.

Quick start::

    from repro import SweepSpec, BackendSpec, run_sweep

    spec = SweepSpec(backends=(BackendSpec(kind="device", name="quito"),),
                     trials=3, seed=0)
    # cold: measures + persists; interrupted runs resume with --resume
    run_sweep(spec, workers=4, store="sweep-store", resume=True)
    # warm: zero calibration executions, identical numbers
    run_sweep(spec, workers=4, store="sweep-store", resume=True)
    # the same, without touching disk (tests, ephemeral sweeps):
    run_sweep(spec, store="mem://scratch", resume=True)

The CLI surface is ``repro sweep --store LOCATOR [--resume]`` plus
``repro store ls|inspect|gc LOCATOR`` — every command accepts any
backend locator.
"""

from repro.store.artifacts import (
    ArtifactInfo,
    ArtifactStore,
    canonical_key_digest,
    store_locator,
    store_root,
)
from repro.store.backends import (
    FakeObjectClient,
    LocalDirBackend,
    MemoryBackend,
    ObjectStoreBackend,
    StoreBackend,
    open_backend,
    reset_memory_spaces,
    set_default_object_client,
)
from repro.store.calcache import PersistentCalibrationCache
from repro.store.codecs import (
    EncodeOptions,
    NonFiniteValueError,
    UnknownCodecTagError,
    decode,
    deep_equal,
    encode,
    strict_dumps,
)
from repro.store.faults import BackendCrash, Fault, FaultyBackend, TransientStoreError
from repro.store.journal import SweepJournal, journal_spec_digest
from repro.store.locator import StoreLocator, parse_store_locator

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "PersistentCalibrationCache",
    "SweepJournal",
    "StoreBackend",
    "LocalDirBackend",
    "MemoryBackend",
    "ObjectStoreBackend",
    "FakeObjectClient",
    "FaultyBackend",
    "Fault",
    "BackendCrash",
    "TransientStoreError",
    "StoreLocator",
    "parse_store_locator",
    "open_backend",
    "set_default_object_client",
    "reset_memory_spaces",
    "canonical_key_digest",
    "journal_spec_digest",
    "store_locator",
    "store_root",
    "encode",
    "decode",
    "deep_equal",
    "strict_dumps",
    "EncodeOptions",
    "NonFiniteValueError",
    "UnknownCodecTagError",
]
