"""Persistent artifact store: durable calibrations, resumable sweeps.

The repo's fourth subsystem.  The paper's operational claim (§V, §VII-A)
is that calibration is the dominant *recurring* cost and stays valid for
hours — worth persisting across processes, not just memoizing within one.
This package makes everything the pipeline measures durable:

* :class:`~repro.store.artifacts.ArtifactStore` — a content-addressed,
  on-disk store (canonical-JSON key → SHA-256 address; atomic
  write-then-rename; ``.npz`` array payloads) with bit-exact round-trip
  codecs for calibration matrices, mitigator states, coupling maps and
  sweep records (:mod:`repro.store.codecs`);
* :class:`~repro.store.journal.SweepJournal` — an append-only JSONL log of
  completed sweep tasks, so ``run_sweep(spec, store=..., resume=True)``
  restarts a crashed grid exactly where it stopped, bit-identical to an
  uninterrupted run;
* :class:`~repro.store.calcache.PersistentCalibrationCache` — the
  in-memory :class:`~repro.pipeline.cache.CalibrationCache` with the store
  as a second tier, making a warm grid rerun skip **every** calibration
  execution while provably reporting the same method errors.

Quick start::

    from repro import SweepSpec, BackendSpec, run_sweep

    spec = SweepSpec(backends=(BackendSpec(kind="device", name="quito"),),
                     trials=3, seed=0)
    # cold: measures + persists; interrupted runs resume with --resume
    run_sweep(spec, workers=4, store="sweep-store", resume=True)
    # warm: zero calibration executions, identical numbers
    run_sweep(spec, workers=4, store="sweep-store", resume=True)

The CLI surface is ``repro sweep --store DIR [--resume]`` plus
``repro store ls|inspect|gc DIR``.
"""

from repro.store.artifacts import (
    ArtifactInfo,
    ArtifactStore,
    canonical_key_digest,
    store_root,
)
from repro.store.calcache import PersistentCalibrationCache
from repro.store.codecs import decode, deep_equal, encode
from repro.store.journal import SweepJournal, journal_spec_digest

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "PersistentCalibrationCache",
    "SweepJournal",
    "canonical_key_digest",
    "journal_spec_digest",
    "store_root",
    "encode",
    "decode",
    "deep_equal",
]
