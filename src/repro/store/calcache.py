"""Two-tier calibration cache: in-memory first, artifact store second.

:class:`PersistentCalibrationCache` extends the sweep engine's in-memory
:class:`~repro.pipeline.cache.CalibrationCache` with an
:class:`~repro.store.artifacts.ArtifactStore` tier, so calibration state
measured by one process is reusable by every later (or concurrent) process
running the same logical sweep — a warm rerun of a whole grid performs
**zero** calibration executions (``stats().misses == 0``, pinned in
``tests/test_store_resume.py``).

The budget-replay discipline is preserved exactly: a store-tier hit
restores the same ``(state, shots_spent, circuits_executed)`` triple a
memory hit would have, so the caller replays the identical ledger spend and
cold/warm method errors are provably equal (see
:mod:`repro.pipeline.cache` for the argument — nothing about it depends on
*which* tier produced the record, only on the engine's reseed-per-key
discipline, which makes the record a pure function of the key).

Cache keys are tuples of primitives (spec digest, point, trial, method,
budget).  They are content-addressed on disk through the same canonical
JSON scheme as every other artifact, namespaced under
``{"kind": "calibration"}``.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro._version import __version__
from repro.pipeline.cache import CacheKey, CalibrationCache, CalibrationRecord
from repro.store.artifacts import ArtifactStore

__all__ = ["PersistentCalibrationCache"]


class PersistentCalibrationCache(CalibrationCache):
    """A :class:`CalibrationCache` backed by an on-disk second tier.

    Payload encoding follows the store it wraps: a compact-mode
    :class:`ArtifactStore` persists calibration states sparsely (see
    :mod:`repro.store.codecs`), a dense one writes the pre-1.8 bytes —
    either way restores are bit-exact and digests are identical, so
    warm tiers written under one encoding stay warm under the other.
    """

    def __init__(self, store: ArtifactStore) -> None:
        super().__init__()
        self._store = store

    @property
    def artifact_store(self) -> ArtifactStore:
        return self._store

    def graph_cache(self):
        """Node-granular sibling over the same artifact store.

        Monolithic calibration events and calibration-DAG node states are
        different artifact namespaces (``"calibration"`` vs
        ``"calgraph-node"``) sharing one store, so a sweep's warm tier and
        the incremental scheduler's partial-reuse tier co-exist in any
        backend the store supports.
        """
        from repro.calgraph.cache import CalibrationGraphCache

        return CalibrationGraphCache(self._store)

    @staticmethod
    def _artifact_key(key: CacheKey) -> dict:
        # The library version is part of the identity, mirroring the sweep
        # journal's refusal policy: bit-identity only holds within one
        # engine version (releases have changed numbers under identical
        # seeds before), so an upgraded install misses cleanly and
        # re-measures rather than silently restoring state the current
        # code would never produce.
        return {
            "kind": "calibration",
            "version": __version__,
            "key": tuple(key),
        }

    def _fetch_from_disk(self, key: CacheKey) -> Optional[CalibrationRecord]:
        """Store-tier read, promoting into the memory tier on success.

        No stats are touched here — promotion is not a miss (misses mean
        "cold calibrations actually performed") and which caller gets the
        hit credited is the caller's business (:meth:`lookup` vs
        :meth:`peek`)."""
        payload = self._store.get(self._artifact_key(key))
        if payload is None:
            return None
        record = CalibrationRecord(
            state=payload["state"],
            shots_spent=int(payload["shots_spent"]),
            circuits_executed=int(payload["circuits_executed"]),
        )
        self._entries[key] = record
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.counter(
                "repro_calcache_store_restores_total",
                "Calibration records restored from the artifact tier",
            ).inc()
        return record

    def peek(self, key: CacheKey) -> Optional[CalibrationRecord]:
        """Stat-free probe through both tiers (memory, then disk)."""
        record = super().peek(key)
        if record is not None:
            return record
        return self._fetch_from_disk(key)

    def lookup(self, key: CacheKey) -> Optional[CalibrationRecord]:
        record = super().lookup(key)  # memory tier (counts the hit)
        if record is not None:
            return record
        record = self._fetch_from_disk(key)
        if record is None:
            return None
        # Count the disk hit with the same saved-work accounting as a
        # memory hit.
        self._stats.hits += 1
        self._stats.saved_shots += record.shots_spent
        self._stats.saved_circuits += record.circuits_executed
        return record

    def store(
        self,
        key: CacheKey,
        state: dict,
        shots_spent: int,
        circuits_executed: int,
    ) -> None:
        """Write-through: memory tier plus a durable artifact."""
        super().store(key, state, shots_spent, circuits_executed)
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.counter(
                "repro_calcache_store_writes_total",
                "Calibration records written through to the artifact tier",
            ).inc()
        self._store.put(
            self._artifact_key(key),
            {
                "state": state,
                "shots_spent": int(shots_spent),
                "circuits_executed": int(circuits_executed),
            },
        )
