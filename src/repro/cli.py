"""Command-line interface: run the paper's experiments from a terminal.

::

    python -m repro list
    python -m repro ghz --architecture grid --qubits 4 8 12 --shots 16000
    python -m repro devices --devices quito nairobi --shots 32000
    python -m repro correlations --device nairobi --weeks 3
    python -m repro xchain --max-depth 45
    python -m repro channels --kind correlated
    python -m repro costs --qubits 16
    python -m repro stability --device nairobi --weeks 4
    python -m repro shots --qubits 6 --budgets 1000 4000 16000
    python -m repro sweep --devices quito lima nairobi --trials 3 --workers 4
    python -m repro sweep --spec grid.json --workers 4 --json out.json
    python -m repro sweep --spec grid.json --store ./artifacts --resume
    python -m repro sweep --spec grid.json --store mem://scratch
    python -m repro store ls ./artifacts
    python -m repro store ls s3://sweeps/warm-tier
    python -m repro calib plan --device quito --method CMC --store ./artifacts
    python -m repro calib run --device quito --method CMC --store ./artifacts
    python -m repro calib run --device quito --drift-qubits 0 --store ./artifacts
    python -m repro calib status --store ./artifacts
    python -m repro serve --store ./artifacts --port 7341
    python -m repro submit --devices quito --trials 3 --follow
    python -m repro --version

Every command prints the same rows/series the corresponding paper artifact
reports (see EXPERIMENTS.md for the mapping) and is deterministic under
``--seed``.  ``sweep`` runs an arbitrary grid — from a JSON
:class:`~repro.pipeline.spec.SweepSpec` or inline flags — on the parallel
engine, with per-task progress on stderr and optional JSON results.
``--store LOCATOR`` makes a sweep durable (journal + persistent
calibrations; ``--resume`` restarts a crashed run bit-identically; the
planner orders tasks warm-first and reports the journaled/warm/cold
split).  A store is named by a URL-style locator — a plain directory
path (or ``dir:///path``), ``mem://name`` for an in-process store, or
``s3://bucket/prefix`` for an object store with an injected client —
and ``store ls|inspect|gc`` work identically on all of them.  ``serve`` hosts a store as
a long-running sweep service (see :mod:`repro.service`); ``submit`` sends
a grid to it — with ``--follow``, journal rows stream back live while the
sweep runs, and the final table is bit-identical to a local run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro._version import __version__
from repro.experiments import (
    device_correlation_map,
    device_ghz_table,
    err_stability_experiment,
    format_series,
    format_table,
    ghz_architecture_sweep,
    shots_scaling_experiment,
    simulated_channel_benchmark,
    x_chain_experiment,
)
from repro.experiments.runner import METHOD_ORDER
from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep

__all__ = ["main", "build_parser"]

#: Default `repro serve` / `repro submit` port.  Mirrors
#: :data:`repro.service.server.DEFAULT_PORT` (which is authoritative);
#: duplicated here so the CLI parser builds without importing asyncio
#: machinery — the service package loads lazily in the handlers.
DEFAULT_SERVICE_PORT = 7341

_COMMANDS = {
    "list": "show available commands and the paper artifact each reproduces",
    "ghz": "GHZ error-rate sweep over device sizes (Figs. 13-15, octagonal)",
    "devices": "IBM-device GHZ benchmark table (Table II)",
    "correlations": "pairwise correlation map of a device profile (Fig. 1)",
    "xchain": "sequential-X state-dependence experiment (Fig. 3)",
    "channels": "mitigation under focused error channels (Fig. 12)",
    "costs": "characterisation cost table (Table I)",
    "stability": "ERR error-map stability across drifted weeks (§VII-A)",
    "shots": "error vs shot budget per method (§V-A)",
    "sweep": "run any declarative sweep grid on the parallel engine",
    "store": "inspect / garbage-collect a sweep artifact store",
    "calib": "plan / run / inspect incremental calibration DAGs (§VII-A)",
    "serve": "host a store as a long-running, streaming sweep service",
    "submit": "send a sweep grid to a running `repro serve` instance",
    "worker": "join a `repro serve` instance as a fleet task worker",
    "metrics": "scrape a running `repro serve` instance's telemetry",
    "trace": "show a sweep's span chain (live server or journal stitch)",
}


def _add_grid_args(p: argparse.ArgumentParser) -> None:
    """The sweep-grid flags, shared verbatim by `sweep` and `submit`."""
    p.add_argument(
        "--spec", default=None, metavar="PATH",
        help="JSON SweepSpec file; overrides the inline grid flags below",
    )
    grid = p.add_mutually_exclusive_group()
    grid.add_argument(
        "--devices", nargs="+", default=None,
        help="IBM-like device profiles to sweep (inline grid)",
    )
    grid.add_argument(
        "--architecture", default=None,
        choices=["grid", "hexagonal", "octagonal", "fully_connected"],
        help="architecture family to sweep over --qubits (inline grid)",
    )
    p.add_argument(
        "--qubits", type=int, nargs="+", default=None,
        help="architecture sizes (with --architecture; default: 6)",
    )
    p.add_argument("--shots", type=int, nargs="+", default=[16000])
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--methods", nargs="+", default=None, choices=METHOD_ORDER)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--full-max-qubits", type=int, default=10)
    p.add_argument(
        "--gate-noise", action=argparse.BooleanOptionalAction, default=True,
        help="include depolarising gate errors (on by default, matching "
        "the devices command; --no-gate-noise for measurement-only runs)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable calibration reuse (identical results, more device time)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Mitigating Coupling Map "
        "Constrained Correlated Measurement Errors on Quantum Devices'.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help=_COMMANDS["list"])

    p = sub.add_parser("ghz", help=_COMMANDS["ghz"])
    p.add_argument(
        "--architecture",
        default="grid",
        choices=["grid", "hexagonal", "octagonal", "fully_connected"],
    )
    p.add_argument("--qubits", type=int, nargs="+", default=[4, 6, 8, 10])
    p.add_argument("--shots", type=int, default=16000)
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--methods", nargs="+", default=None, choices=METHOD_ORDER)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--gate-noise", action="store_true")

    p = sub.add_parser("devices", help=_COMMANDS["devices"])
    p.add_argument(
        "--devices", nargs="+", default=["manila", "lima", "quito", "nairobi"]
    )
    p.add_argument("--shots", type=int, default=32000)
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist calibrations/journal under DIR and resume "
        "interrupted table runs",
    )
    p.add_argument(
        "--fresh", action="store_true",
        help="with --store: ignore any existing journal and start over "
        "(needed e.g. after a repro upgrade invalidates the journal)",
    )

    p = sub.add_parser("correlations", help=_COMMANDS["correlations"])
    p.add_argument("--device", default="nairobi")
    p.add_argument("--weeks", type=int, default=3)
    p.add_argument("--shots-per-circuit", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("xchain", help=_COMMANDS["xchain"])
    p.add_argument("--max-depth", type=int, default=45)
    p.add_argument("--shots", type=int, default=4000)

    p = sub.add_parser("channels", help=_COMMANDS["channels"])
    p.add_argument(
        "--kind", default="correlated", choices=["correlated", "state_dependent"]
    )
    p.add_argument("--qubits", type=int, default=4)
    p.add_argument("--shots-per-state", type=int, default=8500)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("costs", help=_COMMANDS["costs"])
    p.add_argument("--qubits", type=int, default=16)
    p.add_argument("--edges", type=int, default=None)

    p = sub.add_parser("stability", help=_COMMANDS["stability"])
    p.add_argument("--device", default="nairobi")
    p.add_argument("--weeks", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist per-week calibration snapshots under DIR so repeated "
        "drift studies skip profiling",
    )

    p = sub.add_parser("shots", help=_COMMANDS["shots"])
    p.add_argument("--qubits", type=int, default=6)
    p.add_argument(
        "--budgets", type=int, nargs="+", default=[1000, 4000, 16000, 64000]
    )
    p.add_argument("--methods", nargs="+", default=None, choices=METHOD_ORDER)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sweep", help=_COMMANDS["sweep"])
    _add_grid_args(p)
    p.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: serial; results are identical)",
    )
    p.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the full per-record results as JSON",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress"
    )
    p.add_argument(
        "--store", dest="store", default=None, metavar="STORE",
        help="persist calibrations + a crash-safe task journal in STORE — "
        "a directory, dir:///path, mem://name or s3://bucket/prefix "
        "(warm reruns skip every calibration execution; tasks with "
        "persisted calibrations run first)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="with --store: skip tasks already journaled for this spec "
        "(bit-identical to an uninterrupted run)",
    )

    p = sub.add_parser("store", help=_COMMANDS["store"])
    p.add_argument(
        "action", choices=["ls", "inspect", "gc", "repack"],
        help="ls: list artifacts; inspect: show one artifact's key/metadata; "
        "gc: drop crashed-writer debris (and, with --older-than-days, "
        "stale artifacts); repack: re-encode artifacts in place (sparse/"
        "compressed by default, --dense for the pre-1.8 form)",
    )
    p.add_argument(
        "root", metavar="STORE",
        help="store locator: a directory path, dir:///path, mem://name "
        "or s3://bucket/prefix (any backend, same commands)",
    )
    p.add_argument(
        "digest", nargs="?", default=None,
        help="artifact digest (or unique prefix) for `inspect`",
    )
    p.add_argument(
        "--older-than-days", type=float, default=None, metavar="DAYS",
        help="gc: also delete artifacts older than DAYS",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="gc/repack: report what would change (bytes reclaimed or "
        "re-encoded) without touching the store",
    )
    p.add_argument(
        "--dense", action="store_true",
        help="repack: migrate back to the pre-1.8 dense encoding "
        "instead of the compact one",
    )

    p = sub.add_parser("calib", help=_COMMANDS["calib"])
    p.add_argument(
        "action", choices=["plan", "run", "status"],
        help="plan: dirty-frontier report against the store; run: execute "
        "the dirty frontier (clean nodes restore); status: summarise the "
        "store's calibration-node artifacts",
    )
    p.add_argument(
        "--store", required=True, metavar="STORE",
        help="store locator holding the node-granular calibration tier "
        "(a directory path, dir:///path, mem://name or s3://bucket/prefix)",
    )
    target = p.add_mutually_exclusive_group()
    target.add_argument(
        "--device", default=None,
        help="IBM-like device profile to calibrate (quito, lima, ...)",
    )
    target.add_argument(
        "--architecture", default=None,
        choices=["grid", "hexagonal", "heavy_hex", "octagonal",
                 "fully_connected"],
        help="architecture family (with --qubits) to calibrate instead",
    )
    p.add_argument(
        "--qubits", type=int, default=None,
        help="device size (with --architecture; default: 6)",
    )
    p.add_argument(
        "--method", default="CMC",
        choices=["Full", "Linear", "CMC", "CMC-ERR"],
        help="mitigation method whose calibration graph to build",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="calibration seed (part of every node's store key)")
    p.add_argument("--shots-per-node", type=int, default=256,
                   help="shots per calibration circuit within each node")
    p.add_argument(
        "--drift-qubits", type=int, nargs="+", default=None, metavar="Q",
        help="apply localised drift to these qubits' readout errors "
        "before planning/running (the incremental-recalibration scenario)",
    )
    p.add_argument(
        "--drift-edges", nargs="+", default=None, metavar="A-B",
        help="apply localised drift to these edges' correlated channels "
        "(e.g. 0-1 3-4)",
    )
    p.add_argument("--drift-scale", type=float, default=0.15,
                   help="log-scale of the localised jitter (default 0.15)")
    p.add_argument(
        "--graph-json", default=None, metavar="PATH",
        help="plan an explicit {\"nodes\": [{name, deps}]} graph spec "
        "instead of a method graph (structure-only: plan/--dot, not run)",
    )
    p.add_argument(
        "--only", nargs="+", default=None, metavar="NODE",
        help="restrict the plan report to these nodes (unknown names are "
        "an error)",
    )
    p.add_argument(
        "--dot", default=None, metavar="PATH",
        help="write the graph as graphviz DOT to PATH ('-' for stdout)",
    )
    p.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the full plan/run report as JSON to PATH",
    )

    p = sub.add_parser("serve", help=_COMMANDS["serve"])
    p.add_argument(
        "--store", required=True, metavar="STORE",
        help="artifact store the service journals into (a directory or "
        "any store locator; mem://name serves an ephemeral store)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help=f"TCP port (default {DEFAULT_SERVICE_PORT}; 0 = ephemeral)")
    p.add_argument(
        "--workers", type=int, default=1,
        help="concurrent task executions across all live sweeps",
    )
    p.add_argument(
        "--processes", action="store_true",
        help="execute tasks on a process pool (full CPU parallelism) "
        "instead of in-process threads",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="fleet lease lifetime: how long a silent worker may hold a "
        "task before it is re-issued (default 30)",
    )
    p.add_argument(
        "--server-id", default="default", metavar="ID",
        help="stable identity for crash recovery: interrupted sweeps are "
        "recorded in the store under this id and re-adopted by "
        "`repro serve --recover` with the same id (default 'default')",
    )
    p.add_argument(
        "--recover", action="store_true",
        help="on startup, re-adopt this server id's interrupted sweeps "
        "from the store and resume them bit-identically",
    )
    p.add_argument(
        "--max-pending-tasks", type=int, default=None, metavar="N",
        help="admission cap: refuse new sweeps (with a retry_after hint) "
        "while more than N tasks are already backlogged",
    )
    p.add_argument(
        "--rate-limit", type=float, default=None, metavar="REQ_PER_SEC",
        help="per-connection request rate limit (heartbeats exempt); "
        "default: unlimited",
    )
    p.add_argument(
        "--tenant-quota", action="append", default=None,
        metavar="TENANT=sweeps:N,tasks:N,shots:N",
        help="per-tenant admission quota (repeatable; any subset of the "
        "three keys), e.g. --tenant-quota alice=sweeps:2,shots:100000",
    )
    p.add_argument(
        "--default-tenant-quota", default=None,
        metavar="sweeps:N,tasks:N,shots:N",
        help="quota applied to tenants without an explicit --tenant-quota "
        "(default: unlimited)",
    )
    p.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM: let in-flight tasks journal for up to this long "
        "before cancelling the remainder resumably (default 10)",
    )
    p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="enable telemetry and expose a Prometheus/JSON scrape plane "
        "on this HTTP port (GET /metrics, /metrics/json; 0 = ephemeral)",
    )
    p.add_argument(
        "--obs-sink", action="store_true",
        help="enable telemetry and append every trace span to "
        "obs/events.jsonl in the served store (a durable event log)",
    )

    p = sub.add_parser("submit", help=_COMMANDS["submit"])
    _add_grid_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help=f"server TCP port (default {DEFAULT_SERVICE_PORT})")
    p.add_argument(
        "--follow", action="store_true",
        help="stream journal rows as tasks land, then print the summary "
        "table (without it: print the sweep id and return immediately)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="replay tasks already journaled on the server for this spec",
    )
    p.add_argument(
        "--tenant", default=None, metavar="ID",
        help="submit under this tenant: the sweep's journal and artifacts "
        "live under tenants/ID/ in the server's store and count against "
        "ID's quota (over-quota submissions are refused cleanly)",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="wire deadline per request/stream read; a stalled server "
        "exits with status 2 instead of hanging (default 60; 0 = none)",
    )
    p.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="with --follow: also write the full results as JSON",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress"
    )

    p = sub.add_parser("worker", help=_COMMANDS["worker"])
    p.add_argument(
        "--connect", default=f"127.0.0.1:{DEFAULT_SERVICE_PORT}",
        metavar="HOST:PORT",
        help="the `repro serve` instance to attach to "
        f"(default 127.0.0.1:{DEFAULT_SERVICE_PORT})",
    )
    p.add_argument(
        "--store", default=None, metavar="STORE",
        help="optional local calibration store (directory or locator); "
        "without it the worker uses the store root the server advertises "
        "per task, or runs storeless — results are bit-identical either "
        "way, a store only saves re-calibration work",
    )
    p.add_argument(
        "--name", default="", help="label folded into the worker id (logs)"
    )
    p.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between lease requests when no work is pending",
    )
    p.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="detach after completing N tasks (default: run until Ctrl-C)",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="wire deadline per exchange with the server; a stalled "
        "server triggers a clean re-attach (default 60; 0 = none)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress"
    )

    p = sub.add_parser("metrics", help=_COMMANDS["metrics"])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help=f"server TCP port (default {DEFAULT_SERVICE_PORT})")
    p.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="exposition format (default prometheus text 0.0.4)",
    )
    p.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="wire deadline for the exchange (default 10; 0 = none)",
    )

    p = sub.add_parser("trace", help=_COMMANDS["trace"])
    p.add_argument("sweep_id", metavar="SWEEP_ID",
                   help="the sweep to trace ({digest16}-{n}, as printed by "
                   "submit), or a bare 16-hex trace digest")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help=f"server TCP port (default {DEFAULT_SERVICE_PORT})")
    p.add_argument(
        "--store", default=None, metavar="STORE",
        help="stitch the trace offline from this store's journal instead "
        "of asking a live server (works after the server is gone)",
    )
    p.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="wire deadline for the exchange (default 10; 0 = none)",
    )
    p.add_argument(
        "--json", dest="json_out", action="store_true",
        help="print the span list as JSON instead of a table",
    )

    return parser


def _cmd_list() -> str:
    rows = {name: {"reproduces": desc} for name, desc in _COMMANDS.items()}
    return format_table(rows, ["reproduces"], row_header="command")


def _cmd_ghz(args: argparse.Namespace) -> str:
    sweep = ghz_architecture_sweep(
        args.architecture,
        args.qubits,
        shots=args.shots,
        trials=args.trials,
        methods=args.methods,
        seed=args.seed,
        gate_noise=args.gate_noise,
    )
    return format_series(
        "n", sweep.qubit_counts, {m: sweep.medians(m) for m in sweep.methods()}
    )


def _cmd_devices(args: argparse.Namespace) -> str:
    try:
        table = device_ghz_table(
            args.devices, shots=args.shots, trials=args.trials, seed=args.seed,
            full_max_qubits=5, store=args.store,
            resume=args.store is not None and not args.fresh,
        )
    except ValueError as exc:
        # journal refusals tell the user what to do (--fresh); no traceback
        print(f"repro devices: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    rows = {}
    for method in [m for m in METHOD_ORDER if m in table.methods()]:
        rows[method] = {d: table.summary(d, method) for d in table.devices}
    return format_table(rows, table.devices, row_header="method", precision=2)


def _cmd_correlations(args: argparse.Namespace) -> str:
    res = device_correlation_map(
        args.device,
        weeks=args.weeks,
        shots_per_circuit=args.shots_per_circuit,
        seed=args.seed,
    )
    rows = {
        str(edge): {
            "weight": w,
            "location": "on coupling map" if edge in res.coupling_map else "OFF map",
        }
        for edge, w in res.heaviest(8)
    }
    header = (
        f"device {res.device}: alignment {res.alignment():.2f} "
        f"(1.0 = all correlation on the coupling map)\n"
    )
    return header + format_table(rows, ["weight", "location"], row_header="pair")


def _cmd_xchain(args: argparse.Namespace) -> str:
    res = x_chain_experiment(max_depth=args.max_depth, shots=args.shots)
    even = dict(res.even_series())
    odd = dict(res.odd_series())
    body = format_series(
        "depth",
        res.depths,
        {
            "expected |0> error": [even.get(d) for d in res.depths],
            "expected |1> error": [odd.get(d) for d in res.depths],
        },
    )
    return body + f"\n\nparity gap (state dependence): {res.parity_gap():+.3f}"


def _cmd_channels(args: argparse.Namespace) -> str:
    res = simulated_channel_benchmark(
        args.kind,
        num_qubits=args.qubits,
        shots_per_state=args.shots_per_state,
        seed=args.seed,
    )
    rows = {
        m: {"mean success": res.mean(m), "spread (5-95%)": res.summary(m)}
        for m in res.methods()
    }
    return format_table(rows, ["mean success", "spread (5-95%)"], row_header="method")


def _cmd_costs(args: argparse.Namespace) -> str:
    from repro.core.costs import METHOD_COSTS, characterization_cost

    rows = {}
    for key, cost in METHOD_COSTS.items():
        rows[cost.method] = {
            "formula": cost.formula,
            f"circuits @ n={args.qubits}": characterization_cost(
                key, n=args.qubits, e=args.edges, k=3.0
            ),
            "output": cost.output,
        }
    return format_table(
        rows,
        ["formula", f"circuits @ n={args.qubits}", "output"],
        row_header="method",
        precision=0,
    )


def _cmd_stability(args: argparse.Namespace) -> str:
    try:
        res = err_stability_experiment(
            args.device, weeks=args.weeks, seed=args.seed, store=args.store
        )
    except ValueError as exc:
        # bad store locators (unknown scheme, client-less s3://) get the
        # same clean exit-2 as every other store-aware command
        print(f"repro stability: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    rows = {
        f"week {w}": {
            "error map": str(res.weekly_maps[w].edges),
            "recall": res.weekly_recall()[w],
        }
        for w in range(res.weeks)
    }
    body = format_table(rows, ["error map", "recall"], row_header="week")
    return body + (
        f"\n\nmean pairwise Jaccard overlap: {res.mean_jaccard():.2f}"
        f"\nstable core: {res.stable_core()}"
    )


def _cmd_shots(args: argparse.Namespace) -> str:
    res = shots_scaling_experiment(
        args.qubits, args.budgets, methods=args.methods, seed=args.seed
    )
    return format_series(
        "budget", res.budgets, {m: res.medians(m) for m in res.methods()}
    )


#: The inline-grid flags a --spec file would silently override if both were
#: given; defaults are read back from the parser so they cannot drift.
_SWEEP_GRID_FLAGS = {
    "devices": "--devices",
    "architecture": "--architecture",
    "qubits": "--qubits",
    "shots": "--shots",
    "trials": "--trials",
    "methods": "--methods",
    "seed": "--seed",
    "full_max_qubits": "--full-max-qubits",
    "gate_noise": "--gate-noise/--no-gate-noise",
}


def _sweep_spec_from_args(
    args: argparse.Namespace, command: str = "sweep"
) -> SweepSpec:
    """Build a SweepSpec from ``--spec`` or the inline grid flags."""
    if args.spec is not None:
        baseline = build_parser().parse_args([command])
        conflicting = [
            flag
            for attr, flag in _SWEEP_GRID_FLAGS.items()
            if getattr(args, attr) != getattr(baseline, attr)
        ]
        if conflicting:
            raise ValueError(
                f"--spec defines the whole grid; it cannot be combined with "
                f"{conflicting} (only the non-grid flags compose with a "
                f"spec file)"
            )
        try:
            spec = SweepSpec.from_json_file(args.spec)
        except FileNotFoundError:
            raise ValueError(f"--spec {args.spec}: no such file") from None
        except ValueError as exc:
            # json.JSONDecodeError subclasses ValueError: malformed JSON
            # (and spec-validation refusals) get the flag-error treatment,
            # not a traceback
            raise ValueError(f"--spec {args.spec} is not valid: {exc}") from None
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"--spec {args.spec} is not a valid SweepSpec: {exc}"
            ) from None
    else:
        if args.devices is not None:
            if args.qubits is not None:
                raise ValueError(
                    "--qubits only applies with --architecture; device "
                    "profiles fix their own size"
                )
            backends = tuple(
                BackendSpec(kind="device", name=d, gate_noise=args.gate_noise)
                for d in args.devices
            )
        else:
            architecture = args.architecture or "grid"
            backends = tuple(
                BackendSpec(
                    kind="architecture",
                    name=architecture,
                    qubits=n,
                    gate_noise=args.gate_noise,
                )
                for n in (args.qubits or [6])
            )
        spec = SweepSpec(
            backends=backends,
            circuits=(CircuitSpec(),),
            shots=tuple(args.shots),
            methods=None if args.methods is None else tuple(args.methods),
            trials=args.trials,
            seed=args.seed,
            full_max_qubits=args.full_max_qubits,
        )
    if args.no_cache:
        spec = spec.with_options(reuse_calibration=False)
    return spec


def _progress_printer(spec: SweepSpec):
    """Per-task stderr line shared by `sweep` and `submit --follow`."""

    def progress(done: int, total: int, outcome) -> None:
        label = spec.backends[outcome.backend_index].label
        trials = ",".join(str(t) for t in outcome.trials)
        print(
            f"[{done}/{total}] {label} trial {trials} "
            f"done in {outcome.duration:.1f}s"
            + (
                f" ({outcome.cache_hits} calibration cache hits)"
                if outcome.cache_hits
                else ""
            ),
            file=sys.stderr,
            flush=True,
        )

    return progress


def _result_table(result) -> str:
    """The summary table + footer shared by `sweep` and `submit`."""
    rows = result.summary_rows()
    body = format_table(
        rows, result.column_labels(), row_header="method", precision=2
    )
    footer = (
        f"\n\n{result.spec.num_tasks} tasks ({result.workers} worker(s)) "
        f"in {result.wall_time:.1f}s; calibration cache: "
        f"{result.cache_hits} hits / {result.cache_misses} misses, "
        f"{result.saved_circuits} circuit executions "
        f"({result.saved_shots} shots) saved"
    )
    return body + footer


def _cmd_sweep(args: argparse.Namespace) -> str:
    try:
        if args.resume and args.store is None:
            raise ValueError("--resume needs --store DIR to resume from")
        spec = _sweep_spec_from_args(args)
    except ValueError as exc:
        # flag mistakes get an argparse-style error, not a traceback
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    progress = None
    on_plan = None
    if not args.quiet:
        progress = _progress_printer(spec)
        if args.store is not None:
            # the planner's pre-scan, not a bare task count: how much of
            # this grid replays from the journal, restores warm
            # calibrations, or actually runs cold
            label = "resume" if args.resume else "plan"

            def on_plan(plan) -> None:
                print(f"{label}: {plan.summary()}", file=sys.stderr, flush=True)

    try:
        result = run_sweep(
            spec,
            workers=args.workers,
            progress=progress,
            store=args.store,
            resume=args.resume,
            on_plan=on_plan,
        )
    except ValueError as exc:
        # store/journal refusals (version or spec mismatch, journal held by
        # another process, corruption) carry actionable advice — deliver it
        # as a CLI error, not a traceback
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
    out = _result_table(result)
    if args.json_out:
        out += f"\nresults written to {args.json_out}"
    return out


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    import signal

    from repro.service.server import DEFAULT_PORT, SweepServer
    from repro.service.tenancy import TenantQuota

    try:
        tenant_quotas = {}
        for item in args.tenant_quota or []:
            name, sep, quota_text = item.partition("=")
            if not sep or not name:
                raise ValueError(
                    f"--tenant-quota needs TENANT=sweeps:N,..., got {item!r}"
                )
            tenant_quotas[name] = TenantQuota.parse(quota_text)
        default_quota = (
            TenantQuota.parse(args.default_tenant_quota)
            if args.default_tenant_quota is not None
            else None
        )
        server = SweepServer(
            args.store,
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            workers=args.workers,
            use_processes=args.processes,
            lease_ttl=args.lease_ttl,
            rate_limit=args.rate_limit,
            server_id=args.server_id,
            max_pending_tasks=args.max_pending_tasks,
            tenant_quotas=tenant_quotas or None,
            default_quota=default_quota,
            metrics_port=args.metrics_port,
            obs_sink=args.obs_sink,
        )
    except ValueError as exc:
        # bad locators, quotas, or --processes over a process-local store
        # (mem://, injected-client s3://) — actionable, not a traceback
        print(f"repro serve: error: {exc}", file=sys.stderr)
        raise SystemExit(2)

    async def _serve() -> None:
        await server.start(recover=args.recover)
        recovered = server.coordinator.recovered_count
        print(
            f"repro serve: store {args.store} listening on "
            f"{server.host}:{server.port} "
            f"({server.coordinator.workers} worker(s), "
            f"{'processes' if args.processes else 'threads'}, "
            f"server-id {args.server_id}"
            + (f", {recovered} sweep(s) recovered" if recovered else "")
            + (
                f", metrics on http://{server.host}:{server.metrics_port}"
                "/metrics"
                if server.metrics_port is not None
                else ""
            )
            + "); Ctrl-C stops, SIGTERM drains",
            file=sys.stderr,
            flush=True,
        )
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stopping.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
        serve_task = asyncio.create_task(server.serve_forever())
        stop_task = asyncio.create_task(stopping.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if stopping.is_set():
                print(
                    "repro serve: SIGTERM — draining in-flight tasks "
                    f"(grace {args.drain_grace:g}s)",
                    file=sys.stderr,
                    flush=True,
                )
                await server.shutdown(grace=args.drain_grace)
                print("repro serve: drained; stopped", file=sys.stderr)
            elif serve_task.done():
                serve_task.result()  # surface a listener failure
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: stopped", file=sys.stderr)
    except OSError as exc:  # port in use, bad interface, ...
        print(f"repro serve: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    return ""


def _cmd_submit(args: argparse.Namespace) -> str:
    from repro.service.client import ServiceError, SweepClient, submit_and_follow
    from repro.service.server import DEFAULT_PORT

    try:
        spec = _sweep_spec_from_args(args, command="submit")
    except ValueError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    port = DEFAULT_PORT if args.port is None else args.port
    timeout = None if args.timeout is not None and args.timeout <= 0 else args.timeout
    progress = None if args.quiet else _progress_printer(spec)
    total = spec.num_tasks
    done = 0

    def on_row(row: dict) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            outcome = _row_outcome(row)
            progress(done, total, outcome)

    try:
        if not args.follow:
            import asyncio

            async def _submit_only() -> str:
                async with SweepClient(args.host, port, timeout=timeout) as client:
                    return await client.submit(
                        spec, resume=args.resume, tenant=args.tenant
                    )

            sweep_id = asyncio.run(_submit_only())
            return (
                f"submitted {sweep_id} ({total} tasks); follow with "
                f"`repro submit ... --follow` or watch the server log"
            )
        result = submit_and_follow(
            spec,
            host=args.host,
            port=port,
            resume=args.resume,
            on_row=on_row,
            tenant=args.tenant,
            timeout=timeout,
        )
    except ConnectionError as exc:
        print(
            f"repro submit: error: cannot reach repro serve at "
            f"{args.host}:{port} ({exc})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    except TimeoutError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except OSError as exc:
        print(
            f"repro submit: error: cannot connect to {args.host}:{port} "
            f"({exc}) — is `repro serve` running?",
            file=sys.stderr,
        )
        raise SystemExit(2)
    except ServiceError as exc:
        # server-side refusals: invalid specs, journal in use, failed
        # runs, and structured admission errors (quota/saturated/...)
        hint = ""
        if getattr(exc, "retry_after", None):
            hint = f" (retry in {exc.retry_after:g}s)"
        print(f"repro submit: error: {exc}{hint}", file=sys.stderr)
        raise SystemExit(2)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
    out = _result_table(result)
    if args.json_out:
        out += f"\nresults written to {args.json_out}"
    return out


def _row_outcome(row: dict):
    """A streamed journal row as the TaskOutcome the progress line prints."""
    from repro.store.journal import outcome_from_entry

    return outcome_from_entry(row)


def _cmd_worker(args: argparse.Namespace) -> str:
    from repro.service.client import ServiceError
    from repro.service.fleet import FleetWorker

    connect = args.connect
    host, sep, port_text = connect.rpartition(":")
    if not sep or not host:
        print(
            f"repro worker: error: --connect needs HOST:PORT, got "
            f"{connect!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"repro worker: error: --connect port must be an integer, got "
            f"{port_text!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)

    def on_result(task: dict, verdict: dict) -> None:
        if args.quiet:
            return
        tag = "done" if verdict.get("accepted") else (
            "duplicate" if verdict.get("duplicate") else "rejected"
        )
        print(
            f"repro worker: {tag} sweep={task['sweep_id']} "
            f"point={task['point']} trials={task['trials']}",
            file=sys.stderr,
            flush=True,
        )

    try:
        worker = FleetWorker(
            host=host,
            port=port,
            name=args.name,
            store=args.store,
            poll=args.poll,
            max_tasks=args.max_tasks,
            on_result=on_result,
            timeout=(
                None
                if args.timeout is not None and args.timeout <= 0
                else args.timeout
            ),
        )
    except ValueError as exc:  # bad --store locator
        print(f"repro worker: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not args.quiet:
        print(
            f"repro worker: attaching to {host}:{port}"
            + (f" (store {args.store})" if args.store else "")
            + "; Ctrl-C stops",
            file=sys.stderr,
            flush=True,
        )
    try:
        report = worker.run_sync()
    except KeyboardInterrupt:
        report = worker.report
        print("repro worker: stopped", file=sys.stderr)
    except (ConnectionError, OSError) as exc:
        print(
            f"repro worker: error: cannot connect to {host}:{port} "
            f"({exc}) — is `repro serve` running?",
            file=sys.stderr,
        )
        raise SystemExit(2)
    except ServiceError as exc:  # version mismatch / refused frames
        print(f"repro worker: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    return (
        f"worker {report.worker_id or '(never attached)'}: "
        f"{report.completed} completed, {report.duplicates} duplicate, "
        f"{report.rejected} rejected"
    )


def _cmd_metrics(args: argparse.Namespace) -> str:
    import asyncio
    import json

    from repro.service.client import ServiceError, SweepClient
    from repro.service.server import DEFAULT_PORT

    port = DEFAULT_PORT if args.port is None else args.port
    timeout = None if args.timeout is not None and args.timeout <= 0 else args.timeout

    async def _fetch() -> dict:
        async with SweepClient(args.host, port, timeout=timeout) as client:
            return await client.metrics(format=args.format)

    try:
        response = asyncio.run(_fetch())
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(
            f"repro metrics: error: cannot reach repro serve at "
            f"{args.host}:{port} ({exc})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    except ServiceError as exc:
        print(f"repro metrics: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not response.get("enabled"):
        return (
            "(telemetry disabled on this server — start it with "
            "--metrics-port or --obs-sink)"
        )
    if args.format == "prometheus":
        return response.get("prometheus", "").rstrip("\n")
    return json.dumps(response.get("metrics", {}), indent=2, sort_keys=True)


def _trace_table(spans: list) -> str:
    if not spans:
        return "(no spans)"
    rows = {}
    for i, event in enumerate(spans):
        extras = {
            k: v
            for k, v in event.items()
            if k not in ("trace", "span", "ts", "dur", "task")
        }
        rows[str(i)] = {
            "span": event.get("span", "?"),
            "task": str(event.get("task", event.get("trace", "")))[:40],
            "dur": (
                f"{float(event['dur']):.4f}s" if "dur" in event else ""
            ),
            "attrs": ", ".join(
                f"{k}={v}" for k, v in sorted(extras.items())
            )[:60],
        }
    return format_table(rows, ["span", "task", "dur", "attrs"], row_header="#")


def _cmd_trace(args: argparse.Namespace) -> str:
    import json

    from repro import obs

    if args.store is not None:
        # offline stitch: the journal — not the span buffer — is the
        # durable record, so a finished fleet sweep traces from any
        # backend with no server running
        from repro.store import ArtifactStore

        try:
            store = ArtifactStore(args.store)
        except ValueError as exc:
            print(f"repro trace: error: {exc}", file=sys.stderr)
            raise SystemExit(2)
        digest = args.sweep_id.split("-", 1)[0].split(".", 1)[0]
        key = f"journals/{digest}.jsonl"
        raw = store.backend.read_from(key, 0)
        if raw is None:
            print(
                f"repro trace: error: no journal for {args.sweep_id!r} "
                f"({key} not found in {args.store})",
                file=sys.stderr,
            )
            raise SystemExit(2)
        data = raw[0] if isinstance(raw, tuple) else raw
        rows = []
        for line in data.decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                continue  # torn tail line: the journal reader skips it too
        spans = obs.sort_spans(
            obs.spans_from_journal_rows(
                [r for r in rows if r.get("kind") == "task"], trace=digest
            )
        )
    else:
        import asyncio

        from repro.service.client import ServiceError, SweepClient
        from repro.service.server import DEFAULT_PORT

        port = DEFAULT_PORT if args.port is None else args.port
        timeout = (
            None if args.timeout is not None and args.timeout <= 0 else args.timeout
        )

        async def _fetch() -> list:
            async with SweepClient(args.host, port, timeout=timeout) as client:
                return await client.trace(args.sweep_id)

        try:
            spans = asyncio.run(_fetch())
        except (ConnectionError, OSError, TimeoutError) as exc:
            print(
                f"repro trace: error: cannot reach repro serve at "
                f"{args.host}:{port} ({exc}); use --store to stitch the "
                f"trace from a journal offline",
                file=sys.stderr,
            )
            raise SystemExit(2)
        except ServiceError as exc:
            print(f"repro trace: error: {exc}", file=sys.stderr)
            raise SystemExit(2)
    if args.json_out:
        return json.dumps(spans, indent=2, sort_keys=True)
    header = f"trace {args.sweep_id}: {len(spans)} span(s)"
    return header + "\n\n" + _trace_table(spans)


def _cmd_store(args: argparse.Namespace) -> str:
    from repro.store import ArtifactStore

    try:
        store = ArtifactStore(args.root)
    except ValueError as exc:
        # bad locators (unknown scheme, invalid mem:// name, s3:// with
        # no client) are user input errors, not tracebacks
        print(f"repro store: error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if args.action == "ls":
        infos = list(store.entries())
        journals = store.journal_keys()
        if not infos:
            # journals are resumable state — never report them as "empty"
            # (a user trusting ls might delete the directory)
            return (
                f"(no artifacts at {_store_name(store)}; "
                f"{len(journals)} sweep journal(s))"
            )
        rows = {
            info.digest[:16]: {
                "kind": info.kind,
                "size": f"{info.size_bytes / 1024:.1f}K",
                "logical": f"{info.logical_bytes / 1024:.1f}K",
                "written": time.strftime(
                    "%Y-%m-%d %H:%M", time.localtime(info.created)
                ),
                "version": info.version,
            }
            for info in infos
        }
        body = format_table(
            rows,
            ["kind", "size", "logical", "written", "version"],
            row_header="digest",
        )
        encoded = sum(info.size_bytes for info in infos)
        logical = sum(info.logical_bytes for info in infos)
        ratio = logical / encoded if encoded else 1.0
        footer = (
            f"\n\n{len(infos)} artifact(s), {len(journals)} sweep journal(s)"
            f"; {encoded} bytes stored / {logical} logical ({ratio:.1f}x)"
        )
        return body + footer
    if args.action == "inspect":
        if not args.digest:
            raise SystemExit("repro store inspect: a digest is required")
        matches = [
            info for info in store.entries()
            if info.digest.startswith(args.digest)
        ]
        if not matches:
            raise SystemExit(f"no artifact matching {args.digest!r}")
        if len(matches) > 1:
            raise SystemExit(
                f"digest prefix {args.digest!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        info = matches[0]
        import json as _json

        return _json.dumps(
            {
                "digest": info.digest,
                "kind": info.kind,
                "version": info.version,
                "created": time.strftime(
                    "%Y-%m-%d %H:%M:%S", time.localtime(info.created)
                ),
                "size_bytes": info.size_bytes,
                "logical_bytes": info.logical_bytes,
                "codec": info.codec,
                "has_arrays": info.has_arrays,
                "key": _jsonable(info.key),
            },
            indent=2,
        )
    if args.action == "repack":
        report = store.repack(
            compact=not args.dense, dry_run=args.dry_run
        )
        target = "dense" if args.dense else "compact"
        verb = "would re-encode" if args.dry_run else "re-encoded"
        before, after = report["bytes_before"], report["bytes_after"]
        shrink = f"{before / after:.1f}x" if after else "n/a"
        return (
            f"{verb} {report['repacked']} of {report['examined']} "
            f"artifact(s) to the {target} encoding "
            f"({report['skipped']} already there): "
            f"{before} -> {after} bytes ({shrink})"
        )
    # gc
    report = store.gc(
        older_than_days=args.older_than_days, dry_run=args.dry_run
    )
    if args.dry_run:
        return (
            f"would remove {report['removed']} object(s), "
            f"reclaiming {report['freed_bytes']} bytes (dry run; "
            f"nothing deleted)"
        )
    return (
        f"removed {report['removed']} object(s), "
        f"freed {report['freed_bytes']} bytes"
    )


def _calib_error(message) -> "SystemExit":
    print(f"repro calib: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _calib_backend(args):
    """Deterministic backend for the calib target: same flags, same noise
    draw — node keys must be stable across invocations or nothing would
    ever be warm on the second run."""
    from repro.backends.profiles import architecture_backend, device_profile_backend
    from repro.utils.rng import stable_rng

    if args.device is not None:
        rng = stable_rng("calib-device", args.device, args.seed)
        return args.device, device_profile_backend(
            args.device, rng=rng, gate_noise=False
        )
    if args.architecture is not None:
        n = args.qubits if args.qubits is not None else 6
        rng = stable_rng("calib-arch", args.architecture, n, args.seed)
        backend = architecture_backend(
            args.architecture, n,
            error_1q=0.0, error_2q=0.0,
            correlation_placement="coupling",
            rng=rng,
        )
        return f"{args.architecture}-{n}q", backend
    raise ValueError(
        "calib needs a target: --device NAME, --architecture FAMILY "
        "--qubits N, or --graph-json PATH"
    )


def _parse_drift_edges(tokens):
    edges = []
    for token in tokens:
        parts = token.split("-")
        if len(parts) < 2 or not all(p.strip().isdigit() for p in parts):
            raise ValueError(
                f"bad --drift-edges token {token!r}; expected A-B (e.g. 0-1)"
            )
        edges.append(tuple(int(p) for p in parts))
    return edges


def _cmd_calib(args: argparse.Namespace) -> str:
    import json as _json

    from repro.backends.backend import SimulatedBackend
    from repro.calgraph import (
        CalGraphError,
        CalibrationDAG,
        CalibrationGraphCache,
        CalibrationScheduler,
        build_calibration_graph,
        dirty_nodes,
    )
    from repro.noise.drift import drift_noise_model
    from repro.store import ArtifactStore
    from repro.utils.rng import stable_rng

    try:
        store = ArtifactStore(args.store)
    except ValueError as exc:
        raise _calib_error(exc)

    if args.action == "status":
        return _calib_status(store)

    # ---- structure-only graphs from an explicit JSON spec ----
    if args.graph_json is not None:
        try:
            with open(args.graph_json, "r", encoding="utf-8") as fh:
                spec = _json.load(fh)
            graph = CalibrationDAG.from_spec(spec)
            if args.action != "plan":
                raise ValueError(
                    "--graph-json graphs carry structure only; use `plan` "
                    "(or --dot) with them"
                )
            if args.only:
                for name in args.only:
                    graph.node(name)  # unknown names refuse here
        except (CalGraphError, ValueError, OSError, KeyError) as exc:
            raise _calib_error(exc)
        out = []
        if args.dot:
            out.append(_write_dot(graph, args.dot))
        order = graph.topological()
        shown = [n for n in order if not args.only or n in set(args.only)]
        rows = {
            name: {
                "kind": graph.node(name).kind,
                "deps": ",".join(graph.deps(name)) or "-",
            }
            for name in shown
        }
        out.append(format_table(rows, ["kind", "deps"], row_header="node"))
        out.append(f"\n{len(order)} node(s), topological order shown")
        return "\n".join(out)

    # ---- method graphs against a live noise model ----
    try:
        label, backend = _calib_backend(args)
        base_model = backend.noise_model
        model = base_model
        if args.drift_qubits is not None or args.drift_edges is not None:
            edges = (
                _parse_drift_edges(args.drift_edges)
                if args.drift_edges is not None
                else None
            )
            model = drift_noise_model(
                base_model,
                scale=args.drift_scale,
                qubits=args.drift_qubits,
                edges=edges,
                rng=stable_rng("calib-drift", label, args.seed),
            )
            backend = SimulatedBackend(
                backend.coupling_map, model,
                rng=stable_rng("calib-run", label, args.seed),
            )
        graph = build_calibration_graph(
            args.method, backend.coupling_map, full_max_qubits=12
        )
        if args.only:
            for name in args.only:
                graph.node(name)  # unknown names refuse here
        scheduler = CalibrationScheduler(
            graph,
            CalibrationGraphCache(store),
            device=label,
            method=args.method,
            shots_per_node=args.shots_per_node,
            seed=args.seed,
        )
    except (CalGraphError, ValueError, KeyError) as exc:
        raise _calib_error(exc)

    out = []
    if args.dot:
        out.append(_write_dot(graph, args.dot))

    if args.action == "plan":
        plans = scheduler.plan(model)
        shown = [p for p in plans if not args.only or p.name in set(args.only)]
        rows = {
            p.name: {
                "kind": p.kind,
                "qubits": ",".join(map(str, p.qubits)) or "-",
                "state": "warm" if p.cached else "dirty",
                "digest": p.digest[:12],
            }
            for p in shown
        }
        out.append(format_table(
            rows, ["kind", "qubits", "state", "digest"], row_header="node"
        ))
        dirty = [p.name for p in plans if not p.cached]
        out.append(
            f"\nplan: {label} / {args.method} — {len(plans) - len(dirty)} "
            f"warm, {len(dirty)} dirty"
        )
        if dirty:
            out.append("dirty frontier: " + " ".join(sorted(dirty)))
        if model is not base_model:
            drifted = dirty_nodes(graph, base_model, model)
            out.append("drifted vs base model: " + (" ".join(drifted) or "-"))
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                _json.dump([p.to_dict() for p in plans], fh, indent=2)
            out.append(f"plan written to {args.json_out}")
        return "\n".join(out)

    # run
    report = scheduler.run(backend, model=model)
    summary = report.to_dict()
    out.append(
        f"ran {label} / {args.method}: "
        f"{len(report.executed)} executed, {len(report.restored)} restored, "
        f"{len(report.skipped)} skipped, {len(report.failed)} failed"
    )
    out.append(
        f"shots: {report.fresh_shots} fresh, {report.replayed_shots} replayed"
    )
    if report.executed:
        out.append("executed: " + " ".join(report.executed))
    if report.failed:
        out.append("failed: " + " ".join(report.failed))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(summary, fh, indent=2)
        out.append(f"report written to {args.json_out}")
    return "\n".join(out)


def _write_dot(graph, path: str) -> str:
    dot = graph.to_dot()
    if path == "-":
        return dot
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dot)
    return f"DOT written to {path}"


def _calib_status(store) -> str:
    """Summarise the store's calgraph-node artifacts per (device, method)."""
    groups = {}
    for info in store.entries():
        if info.kind != "calgraph-node":
            continue
        key = info.key.get("key", {}) if isinstance(info.key, dict) else {}
        group = (str(key.get("device", "?")), str(key.get("method", "?")))
        stats = groups.setdefault(
            group, {"nodes": 0, "bytes": 0, "versions": set()}
        )
        stats["nodes"] += 1
        stats["bytes"] += info.size_bytes
        stats["versions"].add(info.version)
    if not groups:
        return "(no calibration-node artifacts in this store)"
    rows = {
        f"{device}/{method}": {
            "nodes": str(stats["nodes"]),
            "size": f"{stats['bytes'] / 1024:.1f}K",
            "version": ",".join(sorted(stats["versions"])),
        }
        for (device, method), stats in sorted(groups.items())
    }
    body = format_table(
        rows, ["nodes", "size", "version"], row_header="device/method"
    )
    return body + f"\n\n{len(groups)} calibration group(s)"


def _store_name(store) -> str:
    """The store's display name: the plain path for local stores (what
    the user typed, pre-locator), the locator for every other backend."""
    from repro.store import store_locator

    return store_locator(store)


def _jsonable(obj):
    """Plain-JSON view of a decoded artifact key (tuples become lists)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        print(_cmd_list())
        return 0
    handlers = {
        "ghz": _cmd_ghz,
        "devices": _cmd_devices,
        "correlations": _cmd_correlations,
        "xchain": _cmd_xchain,
        "channels": _cmd_channels,
        "costs": _cmd_costs,
        "stability": _cmd_stability,
        "shots": _cmd_shots,
        "sweep": _cmd_sweep,
        "store": _cmd_store,
        "calib": _cmd_calib,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "worker": _cmd_worker,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
    }
    out = handlers[args.command](args)
    if out:  # serve returns nothing — don't print a stray blank line
        print(out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
