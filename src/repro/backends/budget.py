"""Shot-budget accounting.

The paper's central fairness rule (§V, §VI): every mitigation method gets
the same total number of quantum-device shots, covering *both* its
calibration circuits and its target-circuit executions — e.g. "Each method
is permitted 16000 shots with which to reconstruct a GHZn state" (Fig. 13)
and "Each method is allocated 32000 shots to perform both calibration and
any required circuit executions" (Table II).

:class:`ShotBudget` is a strict ledger: backends charge every executed shot
against it and raise :class:`BudgetExceeded` on overdraw, making it
impossible for a mitigation method to silently cheat in benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["ShotBudget", "BudgetExceeded"]


class BudgetExceeded(RuntimeError):
    """A method attempted to execute more shots than its allocation."""


class ShotBudget:
    """Ledger of device shots, optionally capped.

    Parameters
    ----------
    total:
        Maximum number of shots; ``None`` means unlimited (used by
        characterisation utilities where cost is reported, not enforced).
    """

    def __init__(self, total: Optional[int] = None) -> None:
        if total is not None and total < 0:
            raise ValueError("budget must be non-negative")
        self._total = total
        self._spent = 0
        self._circuits = 0
        self._by_tag: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def total(self) -> Optional[int]:
        return self._total

    @property
    def spent(self) -> int:
        """Shots consumed so far."""
        return self._spent

    @property
    def circuits_executed(self) -> int:
        """Distinct circuit executions charged (cost unit of Table I)."""
        return self._circuits

    @property
    def remaining(self) -> Optional[int]:
        if self._total is None:
            return None
        return self._total - self._spent

    def by_tag(self) -> Dict[str, int]:
        """Shots per accounting tag ('calibration', 'target', ...)."""
        return dict(self._by_tag)

    # ------------------------------------------------------------------
    def can_afford(self, shots: int) -> bool:
        """True iff charging ``shots`` would stay within the allocation."""
        if shots < 0:
            raise ValueError("shots must be non-negative")
        return self._total is None or self._spent + shots <= self._total

    def charge(self, shots: int, tag: str = "untagged") -> None:
        """Record an execution of ``shots`` shots; raises on overdraw."""
        if shots < 0:
            raise ValueError("shots must be non-negative")
        if not self.can_afford(shots):
            raise BudgetExceeded(
                f"budget of {self._total} shots exceeded: {self._spent} spent, "
                f"{shots} requested (tag={tag!r})"
            )
        self._spent += shots
        if shots:
            self._circuits += 1
        self._by_tag[tag] = self._by_tag.get(tag, 0) + shots

    def replay(self, shots: int, circuits: int, tag: str = "calibration") -> None:
        """Charge a previously-recorded spend without executing anything.

        Used by the calibration cache: a cache hit reuses measured
        calibration state, but the equal-budget protocol (§V) still requires
        the method to *pay* for its calibration, otherwise cached runs would
        leave more shots for the target circuit and change the method's
        error.  Replaying the original ledger entry keeps ``spent``,
        ``circuits_executed`` and the remaining target budget identical to a
        cold calibration.
        """
        if circuits < 0:
            raise ValueError("circuits must be non-negative")
        if shots < 0:
            raise ValueError("shots must be non-negative")
        if not self.can_afford(shots):
            raise BudgetExceeded(
                f"budget of {self._total} shots exceeded: {self._spent} spent, "
                f"{shots} replayed (tag={tag!r})"
            )
        self._spent += shots
        self._circuits += circuits
        self._by_tag[tag] = self._by_tag.get(tag, 0) + shots

    def split_evenly(self, num_circuits: int, fraction: float = 1.0) -> int:
        """Shots per circuit when spreading ``fraction`` of the *remaining*
        budget evenly over ``num_circuits`` circuits (floor division).

        Returns 0 when the budget cannot cover one shot per circuit — the
        regime where exponential methods collapse (paper §VI-A).
        """
        if num_circuits < 1:
            raise ValueError("num_circuits must be positive")
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        if self._total is None:
            raise ValueError("cannot split an unlimited budget")
        available = int((self._total - self._spent) * fraction)
        return max(available // num_circuits, 0)

    def __repr__(self) -> str:
        cap = "unlimited" if self._total is None else str(self._total)
        return f"ShotBudget(spent={self._spent}/{cap}, circuits={self._circuits})"
