"""The simulated device executor.

:class:`SimulatedBackend` is the drop-in stand-in for an IBMQ device in
every experiment (see DESIGN.md substitutions): it owns a coupling map and a
:class:`~repro.noise.models.NoiseModel`, validates submitted circuits
against the coupling map, simulates them (statevector, with Pauli-trajectory
gate noise when the model has any), applies the measurement-error channel to
the output distribution, and multinomially samples shots — exactly the
paper's §V-A pipeline.

Output-distribution caching: experiments repeatedly execute the *same*
circuit object (mitigation methods re-run the target circuit under different
budgets), so the noisy pre-sampling distribution is cached per circuit
identity.  Sampling itself is never cached — shot noise must stay
independent across executions.

Determinism: the gate-noise trajectory average for a circuit is drawn from
a stream derived from the backend's construction seed and the circuit's
content fingerprint, never from the running sampling stream.  The noisy
pre-sampling distribution is therefore a pure function of (backend seed,
circuit) — independent of the order in which circuits are first executed —
which is what lets the sweep engine (:mod:`repro.pipeline`) reorder and
cache work without perturbing results.  Only shot sampling consumes the
running stream, which :meth:`SimulatedBackend.reseed` can repoint at a
derived stream between execution phases.

.. note::
   The batched trajectory engine consumes the per-circuit stream in a
   different (vectorised) order than the original serial loop, so trajectory
   averages for noisy circuits differ numerically from pre-batch releases —
   same seeds, same statistics, different draws.  The purity guarantee above
   is unchanged, and the current values are pinned by regression tests
   (``tests/test_backends.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.budget import BudgetExceeded, ShotBudget
from repro.circuits.circuit import Circuit
from repro.circuits.transpile import validate_against_coupling_map
from repro.counts import Counts
from repro.noise.models import NoiseModel
from repro.simulator.statevector import StatevectorSimulator
from repro.simulator.trajectories import TrajectorySimulator
from repro.simulator.sampling import sample_counts
from repro.topology.coupling_map import CouplingMap
from repro.utils.rng import RandomState, ensure_rng, stable_rng
from repro.utils.validation import check_shots

__all__ = ["SimulatedBackend"]


class SimulatedBackend:
    """Noisy simulated quantum device.

    Parameters
    ----------
    coupling_map:
        Device topology; two-qubit gates must lie on its edges.
    noise_model:
        Gate + measurement noise (default: ideal).
    rng:
        Seed or generator for all stochastic behaviour of this backend.
    validate_coupling:
        When True (default), executing a circuit with an off-map two-qubit
        gate raises — mirroring a real device rejecting an unrouted circuit.
    max_trajectories:
        Cap on gate-noise trajectories per distinct circuit evaluation.
    trajectory_memory_bytes:
        Ceiling on the batched trajectory engine's amplitude tensor (the
        batch is chunked beneath it); ``None`` keeps the engine default
        (256 MB).
    """

    def __init__(
        self,
        coupling_map: CouplingMap,
        noise_model: Optional[NoiseModel] = None,
        rng: RandomState = None,
        validate_coupling: bool = True,
        max_trajectories: int = 128,
        trajectory_memory_bytes: Optional[int] = None,
    ) -> None:
        self.coupling_map = coupling_map
        self.noise_model = noise_model or NoiseModel.ideal(coupling_map.num_qubits)
        if self.noise_model.num_qubits != coupling_map.num_qubits:
            raise ValueError(
                f"noise model is over {self.noise_model.num_qubits} qubits, "
                f"device has {coupling_map.num_qubits}"
            )
        self._rng = ensure_rng(rng)
        self.validate_coupling = validate_coupling
        traj_kwargs = {}
        if trajectory_memory_bytes is not None:
            traj_kwargs["memory_budget_bytes"] = trajectory_memory_bytes
        self._trajectory_sim = TrajectorySimulator(
            self.noise_model.error_1q,
            self.noise_model.error_2q,
            max_trajectories=max_trajectories,
            **traj_kwargs,
        )
        # Root of the per-circuit trajectory-noise streams; drawn once so the
        # trajectory average for any circuit depends only on the construction
        # seed + circuit content, not on execution order (see module docs).
        self._traj_root = (
            int(self._rng.integers(0, 2**63 - 1))
            if self.noise_model.has_gate_noise
            else 0
        )
        self._dist_cache: Dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    @property
    def name(self) -> str:
        return f"sim({self.coupling_map.name}/{self.noise_model.name})"

    # ------------------------------------------------------------------
    def _pre_channel_distribution(self, circuit: Circuit, key: tuple) -> np.ndarray:
        """Gate-noise (or ideal) distribution before the measurement channel."""
        if self.validate_coupling:
            validate_against_coupling_map(circuit, self.coupling_map)
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit larger than device")
        if self.noise_model.has_gate_noise:
            traj_rng = stable_rng(self._traj_root, key)
            return self._trajectory_sim.output_distribution(
                circuit, shots=1 << 14, rng=traj_rng
            )
        sim = StatevectorSimulator(circuit.num_qubits)
        sim.run(circuit)
        return sim.probabilities(circuit.measured_qubits)

    def _noisy_distributions(
        self, circuits: Sequence[Circuit]
    ) -> List[np.ndarray]:
        """Pre-sampling outcome distributions, one per circuit.

        Cache-aware batch route: uncached circuits get their gate-noise
        distribution from the (batched) trajectory engine, then all circuits
        sharing a measured-qubit signature are stacked and pushed through
        the measurement-error channel in a single ``(B, 2^k)`` pass (see
        :meth:`MeasurementErrorChannel.apply_marginal`) instead of one
        channel application per circuit — the win for calibration suites,
        which submit dozens of same-register circuits per batch.
        """
        out: List[Optional[np.ndarray]] = [None] * len(circuits)
        todo: Dict[tuple, List[int]] = {}
        for i, circuit in enumerate(circuits):
            key = circuit.fingerprint()
            cached = self._dist_cache.get(key)
            if cached is not None:
                out[i] = cached
            else:
                todo.setdefault(key, []).append(i)
        groups: Dict[Tuple[int, ...], List[Tuple[tuple, np.ndarray]]] = {}
        for key, indices in todo.items():
            circuit = circuits[indices[0]]
            pre = self._pre_channel_distribution(circuit, key)
            groups.setdefault(circuit.measured_qubits, []).append((key, pre))
        channel = self.noise_model.measurement_channel
        for measured, entries in groups.items():
            stack = np.stack([pre for _, pre in entries])
            noisy_stack = channel.apply_marginal(stack, measured)
            for (key, _), noisy in zip(entries, noisy_stack):
                self._dist_cache[key] = noisy.copy()
        for key, indices in todo.items():
            for i in indices:
                out[i] = self._dist_cache[key]
        return out

    def _noisy_distribution(self, circuit: Circuit) -> np.ndarray:
        """Pre-sampling outcome distribution over the measured qubits."""
        return self._noisy_distributions([circuit])[0]

    def run(
        self,
        circuit: Circuit,
        shots: int,
        budget: Optional[ShotBudget] = None,
        tag: str = "untagged",
    ) -> Counts:
        """Execute ``circuit`` for ``shots`` shots.

        When a budget is supplied the shots are charged against it first
        (raising :class:`~repro.backends.budget.BudgetExceeded` on overdraw
        before any work is done).
        """
        check_shots(shots)
        if budget is not None:
            budget.charge(shots, tag=tag)
        dist = self._noisy_distribution(circuit)
        return sample_counts(
            dist,
            shots,
            circuit.measured_qubits,
            rng=self._rng,
            num_qubits=circuit.num_qubits,
        )

    def run_batch(
        self,
        circuits: Sequence[Circuit],
        shots: int,
        budget: Optional[ShotBudget] = None,
        tag: str = "untagged",
    ) -> List[Counts]:
        """Execute several circuits at the same per-circuit shot count.

        The whole batch is charged up front (overdraw raises before any
        simulation *and* before any charge is booked, keeping the ledger
        clean), the uncached pre-sampling distributions are computed
        through the batched route (:meth:`_noisy_distributions`), and shot
        sampling then consumes the running stream in circuit order — the
        same draws a sequence of :meth:`run` calls would make.
        """
        circuits = list(circuits)
        check_shots(shots)
        if budget is not None:
            if not budget.can_afford(shots * len(circuits)):
                raise BudgetExceeded(
                    f"budget cannot afford batch of {len(circuits)} circuit(s) "
                    f"x {shots} shots: {budget.spent} spent of {budget.total}"
                )
            for _ in circuits:
                budget.charge(shots, tag=tag)
        dists = self._noisy_distributions(circuits)
        return [
            sample_counts(
                dist,
                shots,
                circuit.measured_qubits,
                rng=self._rng,
                num_qubits=circuit.num_qubits,
            )
            for circuit, dist in zip(circuits, dists)
        ]

    def exact_distribution(self, circuit: Circuit) -> np.ndarray:
        """The noisy pre-sampling distribution (testing / infinite shots)."""
        return self._noisy_distribution(circuit).copy()

    def reseed(self, rng: RandomState) -> None:
        """Repoint the shot-sampling stream at ``rng``.

        The sweep engine reseeds between execution phases (calibration vs
        target) so each phase samples from a stream derived from its logical
        identity rather than from whatever happened to run before it — the
        basis of bit-identical serial/parallel sweeps.  Cached pre-sampling
        distributions are kept: they do not depend on the sampling stream.
        """
        self._rng = ensure_rng(rng)

    def clear_cache(self) -> None:
        """Drop cached pre-sampling distributions (e.g. after mutating noise)."""
        self._dist_cache.clear()

    def __repr__(self) -> str:
        return f"SimulatedBackend({self.name}, qubits={self.num_qubits})"
