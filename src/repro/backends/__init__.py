"""Simulated device backends.

A :class:`~repro.backends.backend.SimulatedBackend` plays the role of an
IBMQ device in the paper's experiments: it owns a coupling map and a noise
model, executes circuits for a given number of shots, and returns
:class:`~repro.counts.Counts`.  The :class:`~repro.backends.budget.ShotBudget`
ledger enforces the paper's evaluation rule that "each method is afforded an
equal number of measurements of the quantum system".
"""

from repro.backends.backend import SimulatedBackend
from repro.backends.budget import BudgetExceeded, ShotBudget
from repro.backends.profiles import (
    architecture_backend,
    device_profile_backend,
    DEVICE_PROFILES,
)

__all__ = [
    "SimulatedBackend",
    "ShotBudget",
    "BudgetExceeded",
    "architecture_backend",
    "device_profile_backend",
    "DEVICE_PROFILES",
]
