"""Preset backends: architecture families and IBM-like device profiles.

Two families of presets:

* :func:`architecture_backend` — the simulated devices of Figs. 13-15:
  a topology family (grid / hexagonal / octagonal / fully-connected) at a
  given qubit count with the §V-A noise recipe (0.1% 1q, 1% 2q gate error,
  2-8% biased per-qubit readout, "biased but not correlated").

* :func:`device_profile_backend` — the IBM device stand-ins of Table II and
  Fig. 1.  Each profile fixes the published coupling map and a correlation
  *structure* matching the paper's characterisation:

  - Quito, Lima, Belem: correlated errors aligned with coupling-map edges
    ("locally uniform error profiles") — the regime where bare CMC wins;
  - Manila, Nairobi, Oslo: correlations local but *off* the coupling map
    ("almost anti-aligned with the device's coupling map") — the regime
    where CMC-ERR wins (41% error reduction on Nairobi).

  Absolute rates are drawn per-seed around published calibration magnitudes
  (readout 2-8%); only the structure is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.backends.backend import SimulatedBackend
from repro.noise.drift import drift_noise_model
from repro.noise.models import CorrelationPlacement, NoiseModel, random_device_noise
from repro.topology import (
    CouplingMap,
    fully_connected,
    grid,
    heavy_hex,
    named_device,
    octagonal,
)
from repro.utils.rng import RandomState, ensure_rng, stable_rng

__all__ = [
    "architecture_backend",
    "device_profile_backend",
    "drifted_week_backend",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "ARCHITECTURES",
]

ARCHITECTURES: Dict[str, Callable[[int], CouplingMap]] = {
    "grid": grid,
    "hexagonal": heavy_hex,
    "heavy_hex": heavy_hex,
    "octagonal": octagonal,
    "fully_connected": fully_connected,
}


def architecture_backend(
    architecture: str,
    num_qubits: int,
    *,
    error_1q: float = 0.001,
    error_2q: float = 0.01,
    readout_low: float = 0.02,
    readout_high: float = 0.08,
    correlation_placement: CorrelationPlacement = "none",
    rng: RandomState = None,
) -> SimulatedBackend:
    """A Figs. 13-15 simulated device: topology family + §V-A noise recipe.

    Defaults reproduce the paper's statevector-simulator setting exactly:
    per-qubit biased readout with *no* injected correlations ("the noise in
    these experiments is biased but not correlated").
    """
    try:
        make_map = ARCHITECTURES[architecture]
    except KeyError:
        raise KeyError(
            f"unknown architecture {architecture!r}; known: {sorted(ARCHITECTURES)}"
        ) from None
    gen = ensure_rng(rng)
    cmap = make_map(num_qubits)
    model = random_device_noise(
        cmap,
        error_1q=error_1q,
        error_2q=error_2q,
        readout_low=readout_low,
        readout_high=readout_high,
        correlation_placement=correlation_placement,
        rng=gen,
        name=f"{architecture}-{num_qubits}q",
    )
    return SimulatedBackend(cmap, model, rng=gen)


@dataclass(frozen=True)
class DeviceProfile:
    """Noise structure of an IBM-like device stand-in."""

    device: str
    correlation_placement: CorrelationPlacement
    num_correlated: int
    correlation_strength: Tuple[float, float]
    readout_range: Tuple[float, float] = (0.02, 0.08)
    error_1q: float = 0.0003  # ~ published H-gate error 0.03%
    error_2q: float = 0.0098  # ~ published CX error 0.98% (Quito §V-A)
    description: str = ""


DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "quito": DeviceProfile(
        device="quito",
        correlation_placement="coupling",
        num_correlated=2,
        correlation_strength=(0.02, 0.05),
        readout_range=(0.03, 0.07),
        description="locally uniform, coupling-aligned correlations (Fig. 1c)",
    ),
    "lima": DeviceProfile(
        device="lima",
        correlation_placement="coupling",
        num_correlated=2,
        correlation_strength=(0.02, 0.05),
        description="locally uniform, coupling-aligned correlations (Fig. 1b)",
    ),
    "belem": DeviceProfile(
        device="belem",
        correlation_placement="coupling",
        num_correlated=2,
        correlation_strength=(0.02, 0.04),
        description="locally uniform profile (Fig. 1f)",
    ),
    "manila": DeviceProfile(
        device="manila",
        correlation_placement="off_coupling",
        num_correlated=2,
        correlation_strength=(0.02, 0.05),
        description="local but non-coupling-map-aligned correlations (Fig. 1d)",
    ),
    "nairobi": DeviceProfile(
        device="nairobi",
        correlation_placement="off_coupling",
        num_correlated=3,
        correlation_strength=(0.04, 0.08),
        description="correlations almost anti-aligned with the coupling map (Fig. 1e, Fig. 9)",
    ),
    "oslo": DeviceProfile(
        device="oslo",
        correlation_placement="off_coupling",
        num_correlated=2,
        correlation_strength=(0.02, 0.05),
        description="local off-map correlations (Fig. 1a)",
    ),
}


def device_profile_backend(
    device: str,
    rng: RandomState = None,
    *,
    gate_noise: bool = True,
) -> SimulatedBackend:
    """Backend for an IBM device stand-in with its Table II noise structure.

    ``gate_noise=False`` drops the depolarising gate errors, isolating the
    measurement-error channel (useful for calibration-only experiments like
    Fig. 1 where gate noise is irrelevant).
    """
    key = device.lower().removeprefix("ibm_").removeprefix("ibmq_")
    try:
        profile = DEVICE_PROFILES[key]
    except KeyError:
        raise KeyError(
            f"unknown device profile {device!r}; known: {sorted(DEVICE_PROFILES)}"
        ) from None
    gen = ensure_rng(rng)
    cmap = named_device(profile.device)
    model = random_device_noise(
        cmap,
        error_1q=profile.error_1q if gate_noise else 0.0,
        error_2q=profile.error_2q if gate_noise else 0.0,
        readout_low=profile.readout_range[0],
        readout_high=profile.readout_range[1],
        correlation_placement=profile.correlation_placement,
        num_correlated=profile.num_correlated,
        correlation_strength=profile.correlation_strength,
        rng=gen,
        name=f"profile-{profile.device}",
    )
    return SimulatedBackend(cmap, model, rng=gen)


def drifted_week_backend(
    device: str,
    week: int,
    seed: int,
    *,
    namespace: str,
    drift_scale: float = 0.15,
) -> SimulatedBackend:
    """One drifted weekly snapshot of a device, independently seeded.

    The §VII-A / Fig. 1 discipline shared by the week-structured
    experiments: the *base* noise model derives from ``(namespace, seed)``
    alone (every week sees the same device), the drift and the execution
    sampling derive from ``(namespace, seed, week)`` — so weeks can be
    characterised in any order, in any process, with identical results.
    ``namespace`` keeps different experiments' streams apart.
    """
    base = device_profile_backend(
        device, rng=stable_rng(f"{namespace}-base", seed), gate_noise=False
    )
    model = drift_noise_model(
        base.noise_model,
        scale=drift_scale,
        week=week,
        rng=stable_rng(f"{namespace}-drift", seed, week),
    )
    return SimulatedBackend(
        base.coupling_map, model, rng=stable_rng(f"{namespace}-run", seed, week)
    )
