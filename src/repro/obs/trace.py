"""Trace spans: a sweep's lifecycle as correlated, ordered events.

A sweep's **correlation id** is minted at ``submit`` and propagated
through the wire protocol (submit → plan → lease → worker execute →
complete → journal row → watch frame).  It is *deterministic*: the same
16-hex digest the journal is keyed by (:func:`sweep_trace_id` ==
``journal_spec_digest``), suffixed per task with the task's grid
coordinate (:func:`task_trace_id`).  Determinism is what lets the id
live inside journal rows without breaking the repo's bit-identity
discipline — the field is a pure function of (spec, coordinate), so a
row is byte-identical whether telemetry was enabled or not, whether the
task ran locally or on a fleet worker (pinned in
``tests/test_obs_determinism.py``).

Spans themselves are telemetry: they exist only while a collector is
active, they carry wall-clock timestamps and durations, and they are
held in a bounded ring buffer (old sweeps age out; the journal — not
the span buffer — is the durable record, and ``repro trace --store``
can stitch a sweep's task spans back out of journal rows alone).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SpanBuffer",
    "sweep_trace_id",
    "task_trace_id",
    "spans_from_journal_rows",
    "sort_spans",
    "SPAN_ORDER",
]

#: Canonical lifecycle order, used to sort a trace's spans for display
#: (events within one kind stay in recording order).
SPAN_ORDER: Tuple[str, ...] = (
    "submit",
    "plan",
    "lease",
    "execute",
    "complete",
    "journal_row",
    "watch",
)


def sweep_trace_id(spec) -> str:
    """The sweep-level correlation id for ``spec``.

    Identical to :func:`repro.store.journal.journal_spec_digest` — the
    journal key digest IS the trace id, so a sweep id
    (``{digest16}-{n}``), its journal key and its trace correlate by
    construction, with no id-mapping table to lose.
    """
    from repro.store.journal import journal_spec_digest

    return journal_spec_digest(spec)


def task_trace_id(sweep_trace: str, point: int, trials: Sequence[int]) -> str:
    """One task's span id under a sweep trace: deterministic in the grid
    coordinate, so every machine that touches the task derives the same
    id independently."""
    t = "_".join(str(int(x)) for x in trials)
    return f"{sweep_trace}.p{int(point)}.t{t}"


class SpanBuffer:
    """Bounded, thread-safe ring of span events.

    An event is a plain dict: ``{"trace", "span", "ts", ...attrs}`` plus
    an optional ``"dur"`` (seconds).  ``trace`` is the sweep-level
    correlation id; task-scoped events also carry ``"task"`` (the
    :func:`task_trace_id`).  Plain dicts because every consumer — the
    `trace` wire verb, the JSONL sink, the CLI — wants JSON anyway.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._events: deque = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._sinks: List = []

    def add_sink(self, sink) -> None:
        """Attach a callable receiving every event (the JSONL sink)."""
        self._sinks.append(sink)

    def record(
        self,
        trace: str,
        span: str,
        *,
        dur: Optional[float] = None,
        **attrs,
    ) -> dict:
        event: Dict = {"trace": str(trace), "span": str(span), "ts": time.time()}
        if dur is not None:
            event["dur"] = float(dur)
        event.update(attrs)
        with self._lock:
            self._events.append(event)
        for sink in self._sinks:
            try:
                sink(event)
            except Exception:
                # A failing sink must never take an instrumented code
                # path down with it — telemetry is a pure observer.
                pass
        return event

    def events(self, trace: Optional[str] = None) -> List[dict]:
        with self._lock:
            snapshot = list(self._events)
        if trace is None:
            return snapshot
        return [e for e in snapshot if e.get("trace") == trace]

    def sweep_events(self, sweep_id: str) -> List[dict]:
        """Events for a sweep id (``{digest16}-{n}``) or bare trace id —
        matched on the digest prefix, plus any event that recorded the
        exact sweep id (two submissions of one spec share a trace; the
        sweep_id attr distinguishes them when present)."""
        trace = sweep_id.split("-", 1)[0]
        with self._lock:
            snapshot = list(self._events)
        return [
            e
            for e in snapshot
            # task-level ids are "{digest}.p{point}.t{trials}" — match the
            # digest itself and any task id derived from it
            if str(e.get("trace", "")).split(".", 1)[0] == trace
            or e.get("sweep_id") == sweep_id
        ]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


def sort_spans(events: List[dict]) -> List[dict]:
    """Lifecycle order (submit → ... → watch), stable within a kind."""
    rank = {name: i for i, name in enumerate(SPAN_ORDER)}
    ordered = sorted(
        enumerate(events),
        key=lambda pair: (rank.get(pair[1].get("span"), len(rank)), pair[0]),
    )
    return [event for _, event in ordered]


def spans_from_journal_rows(
    rows: Sequence[dict], trace: Optional[str] = None
) -> List[dict]:
    """Reconstruct task spans from journal rows alone.

    This is the fleet-stitching path: every ``task`` row carries its
    deterministic ``trace`` field (``{digest}.p{point}.t{trials}``), so a
    journal read back from any backend yields one ``journal_row`` span
    per completed task — plus a synthesized ``execute`` span from the
    row's recorded duration — with no server or span buffer required.
    Rows from journals written before the trace field existed synthesize
    their id from the coordinate (``trace=...`` supplies the sweep
    digest; without it they group under ``"-"``).
    """
    spans: List[dict] = []
    for index, row in enumerate(rows):
        if row.get("kind") != "task":
            continue
        task = row.get("trace") or task_trace_id(
            trace or "-", int(row.get("point", 0)), row.get("trials", ())
        )
        sweep = task.split(".", 1)[0]
        common = {
            "trace": sweep,
            "task": task,
            "point": int(row.get("point", 0)),
            "trials": [int(t) for t in row.get("trials", ())],
        }
        spans.append(
            dict(
                common,
                span="execute",
                dur=float(row.get("duration", 0.0)),
                cache_hits=int(row.get("cache_hits", 0)),
                cache_misses=int(row.get("cache_misses", 0)),
            )
        )
        spans.append(dict(common, span="journal_row", row=index))
    return spans
