"""``repro.obs`` — zero-dependency telemetry: metrics, traces, exposition.

Design contract (pinned by ``tests/test_obs_determinism.py`` and the
``BENCH_obs.json`` overhead gate):

* **Pure observer.**  Telemetry never feeds back into an instrumented
  code path: no RNG draws, no reordering, no branching on telemetry
  state beyond "is it enabled".  A sweep's records, journal bytes and
  artifacts are bit-identical with telemetry on vs off.
* **Pay only when on.**  Instrumented modules guard with
  :func:`active`, which returns ``None`` while telemetry is disabled —
  the disabled cost is one module-global read and a ``None`` check.
  There is no no-op instrument tree to walk.
* **Process-local.**  The registry lives in the process that observes
  the event.  Service-side hot paths (journal appends, leases,
  admission, watch fan-out) are observed in the server process; task
  internals (cache lookups, simulator chunks) are observed wherever the
  task runs — in-process for thread executors and fleet workers, in the
  child for process pools (whose counts, by design, don't merge back).

Usage::

    from repro import obs

    telemetry = obs.enable()            # idempotent; returns the handle
    ...
    t = obs.active()
    if t is not None:
        t.counter("repro_journal_appends_total",
                  "Journal rows appended").inc()

Exposition: :func:`render_prometheus` (text format 0.0.4), the service's
``metrics``/``trace`` wire verbs, ``repro serve --metrics-port`` and the
``repro metrics`` / ``repro trace`` CLI commands.  The environment
variable ``REPRO_OBS=1`` enables telemetry at import time for processes
with no flag surface of their own (fleet workers, bare sweeps).
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Sequence

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.sink import OBS_EVENTS_KEY, JsonlEventSink
from repro.obs.trace import (
    SPAN_ORDER,
    SpanBuffer,
    sort_spans,
    spans_from_journal_rows,
    sweep_trace_id,
    task_trace_id,
)

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "active",
    "enabled",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanBuffer",
    "JsonlEventSink",
    "render_prometheus",
    "sweep_trace_id",
    "task_trace_id",
    "spans_from_journal_rows",
    "sort_spans",
    "SPAN_ORDER",
    "OBS_EVENTS_KEY",
    "DEFAULT_BUCKETS",
]


class Telemetry:
    """One enabled telemetry scope: a metrics registry + a span buffer.

    The instrument helpers proxy to the registry so instrumented modules
    write ``t.counter(...)`` instead of ``t.metrics.counter(...)`` — the
    hot-path idiom stays one call deep.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        spans: Optional[SpanBuffer] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanBuffer()

    # -- metrics proxies ----------------------------------------------
    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self.metrics.counter(name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self.metrics.gauge(name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        return self.metrics.histogram(name, help, labelnames, buckets)

    # -- spans ---------------------------------------------------------
    def span(self, trace: str, span: str, **attrs) -> dict:
        return self.spans.record(trace, span, **attrs)

    # -- exposition ----------------------------------------------------
    def prometheus(self) -> str:
        return render_prometheus(self.metrics)

    def snapshot(self) -> dict:
        return self.metrics.snapshot()


_lock = threading.Lock()
_active: Optional[Telemetry] = None


def enable(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Turn telemetry on (idempotent) and return the active handle.

    Passing an explicit :class:`Telemetry` replaces the active scope —
    how tests isolate registries and how a server wires its span sink
    before instrumented paths run.
    """
    global _active
    with _lock:
        if telemetry is not None:
            _active = telemetry
        elif _active is None:
            _active = Telemetry()
        return _active


def disable() -> None:
    """Turn telemetry off; instrumented paths return to the no-op guard."""
    global _active
    with _lock:
        _active = None


def active() -> Optional[Telemetry]:
    """The hot-path guard: the active scope, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


if os.environ.get("REPRO_OBS") == "1":  # pragma: no cover - env wiring
    enable()
