"""Zero-dependency metrics: counters, gauges, histograms, Prometheus text.

The registry is deliberately tiny — three instrument kinds, label
children, and a text renderer — because the repo's telemetry has one hard
requirement no client library guarantees: **pure observation**.  Nothing
here may influence an instrumented code path.  Instruments never raise
into callers (label mistakes surface at registration time, not record
time), never allocate per-observation beyond a dict probe, and are
thread-safe under the executor threads the service runs journal appends
on.

Hot paths pay for telemetry only when it is enabled: the instrumented
modules go through :func:`repro.obs.active`, which returns ``None`` when
telemetry is off, so the disabled cost is one global read and a ``None``
check (pinned by the overhead benchmark, ``BENCH_obs.json``).

Exposition is Prometheus text format 0.0.4 (`# HELP` / `# TYPE` plus
``name{labels} value`` samples), rendered deterministically: metrics
sort by name, children by label values, so two scrapes of identical
state are byte-identical.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "DEFAULT_BUCKETS",
]

#: Latency buckets (seconds) shared by every histogram unless overridden:
#: sub-millisecond store ops through multi-second sweep tasks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class _Child:
    """One labelled time series of a parent instrument."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class _CounterChild(_Child):
    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount


class _GaugeChild(_Child):
    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount


class _HistogramChild:
    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum


class _Instrument:
    """Parent of an instrument family: owns the label children.

    The unlabelled case is a family with a single child keyed ``()`` —
    callers use the instrument itself as the child (``inc``/``set``/
    ``observe`` proxy through), so simple metrics read naturally.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        values = tuple(
            str(labelvalues.get(name, "")) for name in self.labelnames
        )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._new_child())
        return child

    def _default_child(self):
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())


class Counter(_Instrument):
    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return sum(child.value for _, child in self.children())


class Gauge(_Instrument):
    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return sum(child.value for _, child in self.children())


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return sum(child.count for _, child in self.children())

    @property
    def sum(self) -> float:
        return sum(child.sum for _, child in self.children())


class MetricsRegistry:
    """A process-local instrument namespace.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers (name, help, labels), later calls return the existing
    family — so instrumented modules never need import-time registration
    and the registry only holds instruments the process actually touched.
    Re-registering a name as a different kind raises: that is a coding
    error, and it surfaces at the registration site, not at scrape time.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, not a "
                    f"{cls.kind}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, labelnames, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, not a "
                    f"{cls.kind}"
                )
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        return sorted(self._instruments.values(), key=lambda i: i.name)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every sample — the `metrics` wire verb's
        payload, mirroring exactly what the Prometheus text exposes."""
        out: Dict[str, dict] = {}
        for inst in self.instruments():
            series = []
            for values, child in inst.children():
                labels = dict(zip(inst.labelnames, values))
                if isinstance(child, _HistogramChild):
                    series.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[inst.name] = {
                "kind": inst.kind,
                "help": inst.help,
                "series": series,
            }
        return out


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for inst in registry.instruments():
        lines.append(f"# HELP {inst.name} {inst.help}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        for values, child in inst.children():
            if isinstance(child, _HistogramChild):
                cumulative = 0
                for bound, bucket_count in zip(
                    inst.buckets + (float("inf"),), child._counts
                ):
                    cumulative += bucket_count
                    le = _label_suffix(
                        inst.labelnames + ("le",),
                        values + (_format_value(bound),),
                    )
                    lines.append(f"{inst.name}_bucket{le} {cumulative}")
                suffix = _label_suffix(inst.labelnames, values)
                lines.append(
                    f"{inst.name}_sum{suffix} {_format_value(child.sum)}"
                )
                lines.append(f"{inst.name}_count{suffix} {child.count}")
            else:
                suffix = _label_suffix(inst.labelnames, values)
                lines.append(
                    f"{inst.name}{suffix} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
