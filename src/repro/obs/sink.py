"""Optional JSONL event sink: span events persisted next to the journal.

When attached (``repro serve --obs-sink``, or programmatically via
:func:`repro.obs.enable`), every span event the collector records is
also appended — one canonical-JSON line per event — to an append-only
stream in the sweep store, under ``obs/events.jsonl``.  It rides the
same :meth:`~repro.store.backends.StoreBackend.append_line` primitive
as the sweep journal, so it works identically over ``dir://``,
``mem://`` and ``s3://`` and inherits each backend's durability story.

The sink is telemetry, not record: failures are swallowed by the span
buffer (a broken sink must never fail a sweep), the stream is never
read back by the engine, and `repro store gc` ignores it.
"""

from __future__ import annotations

import json
import threading

__all__ = ["JsonlEventSink", "OBS_EVENTS_KEY"]

#: Backend key of the event stream — a reserved prefix, like
#: ``journals/`` and ``server/``, never interpreted as an artifact.
OBS_EVENTS_KEY = "obs/events.jsonl"


class JsonlEventSink:
    """Append span events to a backend-held JSONL stream."""

    def __init__(self, backend, key: str = OBS_EVENTS_KEY) -> None:
        self._backend = backend
        self._key = key
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        return self._key

    def __call__(self, event: dict) -> None:
        line = (
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        # One lock around the append keeps interleaved executor threads
        # from racing the backend's stream primitive; transient store
        # errors propagate to the span buffer, which swallows them.
        with self._lock:
            self._backend.append_line(self._key, line)

    def read_events(self):
        """Every event currently in the stream (for tests/tools)."""
        found = self._backend.read_from(self._key, 0)
        if found is None:
            return []
        data, _ = found
        events = []
        for line in data.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail mid-append; telemetry tolerates it
        return events
