"""Benchmark and calibration circuit constructions from the paper.

* :func:`ghz_bfs` — the GHZ benchmark of §V-B: a Hadamard on the root
  followed by CNOTs along the breadth-first traversal of the coupling map.
  "This construction ensures that there is no advantage gained by different
  qubit allocations, routing methods or other compiler optimisations."
* :func:`x_chain` — the sequential-X circuits of Fig. 3 used to expose
  state-dependent measurement errors.
* :func:`basis_state_preparation` / :func:`calibration_circuit` — prepare a
  computational basis state (X on every 1-bit) and measure; the building
  block of every calibration method in the paper.
* :func:`mask_circuit` — the X-mask layers appended by SIM and AIM before
  measurement (§III-D).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.topology.coupling_map import CouplingMap
from repro.utils.bitstrings import int_to_bits

__all__ = [
    "ghz_bfs",
    "x_chain",
    "basis_state_preparation",
    "calibration_circuit",
    "mask_circuit",
]


def ghz_bfs(coupling_map: CouplingMap, root: int = 0, num_qubits: Optional[int] = None) -> Circuit:
    """GHZ state preparation by breadth-first CNOT fan-out (§V-B).

    Parameters
    ----------
    coupling_map:
        Device coupling map; the circuit uses only its edges, so the result
        is executable without routing.
    root:
        Qubit receiving the initial Hadamard.
    num_qubits:
        Optionally entangle only the first ``num_qubits`` qubits reached by
        the BFS (the sweeps of Figs. 13-15 grow GHZ_n on a fixed device).

    Returns
    -------
    Circuit
        ``H(root)`` followed by a CNOT for each BFS tree edge
        ``(parent, child)``; measures the entangled qubits.
    """
    if not coupling_map.connected() and (
        num_qubits is None or num_qubits > 1
    ):
        # A BFS from the root only reaches its component; for GHZ over the
        # full device the map must be connected.
        reachable = coupling_map.qubits_within([root], coupling_map.num_qubits)
        want = coupling_map.num_qubits if num_qubits is None else num_qubits
        if len(reachable) < want:
            raise ValueError(
                "coupling map is disconnected; GHZ fan-out cannot reach "
                f"{want} qubits from root {root}"
            )
    n = coupling_map.num_qubits
    qc = Circuit(n, name=f"ghz-{coupling_map.name}-root{root}")
    qc.h(root)
    entangled = [root]
    limit = n if num_qubits is None else int(num_qubits)
    if limit < 1 or limit > n:
        raise ValueError(f"num_qubits must be in [1, {n}], got {limit}")
    for parent, child in coupling_map.bfs_edges(root):
        if len(entangled) >= limit:
            break
        qc.cx(parent, child)
        entangled.append(child)
    qc.measure(sorted(entangled))
    return qc


def x_chain(depth: int, num_qubits: int = 1, qubit: int = 0) -> Circuit:
    """``depth`` sequential X gates on one qubit, then measure (Fig. 3).

    Odd ``depth`` prepares |1>, even depth |0>; comparing the two error
    rates as depth grows separates state-dependent measurement errors from
    accumulating gate errors.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    qc = Circuit(num_qubits, name=f"x-chain-{depth}")
    for _ in range(depth):
        qc.x(qubit)
    qc.measure([qubit])
    return qc


def basis_state_preparation(num_qubits: int, state: int) -> Circuit:
    """Prepare computational basis state ``state`` (X on each set bit)."""
    if not (0 <= state < (1 << num_qubits)):
        raise ValueError(f"state {state} out of range for {num_qubits} qubits")
    qc = Circuit(num_qubits, name=f"prep-{state:0{num_qubits}b}")
    bits = int_to_bits(state, num_qubits)
    for q in range(num_qubits):
        if bits[q]:
            qc.x(q)
    return qc


def calibration_circuit(
    num_qubits: int,
    prepared: int,
    measured: Optional[Sequence[int]] = None,
) -> Circuit:
    """Basis-state preparation plus measurement — one calibration circuit.

    ``prepared`` is the basis state over the *full* register; calibration
    methods that prepare local patch states build ``prepared`` by depositing
    patch bits (see :mod:`repro.core.circuits`).
    """
    qc = basis_state_preparation(num_qubits, prepared)
    qc.name = f"cal-{prepared:0{num_qubits}b}"
    if measured is None:
        qc.measure_all()
    else:
        qc.measure(measured)
    return qc


def mask_circuit(num_qubits: int, mask: int) -> Circuit:
    """An X on each set bit of ``mask`` (the SIM/AIM pre-measurement layer).

    SIM appends the four masks ``0``, ``all-ones``, ``0101...`` and
    ``1010...``; AIM draws masks from a sliding four-qubit window pool.
    The executor un-flips outcomes by XOR-ing with the same mask.
    """
    if not (0 <= mask < (1 << num_qubits)):
        raise ValueError(f"mask {mask} out of range for {num_qubits} qubits")
    qc = Circuit(num_qubits, name=f"mask-{mask:0{num_qubits}b}")
    bits = int_to_bits(mask, num_qubits)
    for q in range(num_qubits):
        if bits[q]:
            qc.x(q)
    return qc
