"""Quantum circuit intermediate representation and circuit library.

A deliberately small IR: enough to express the paper's benchmark circuits
(GHZ via breadth-first CNOT fan-out, sequential-X chains, basis-state
preparation for calibration, and the X-mask circuits of SIM/AIM) and to be
simulated exactly by :mod:`repro.simulator`.
"""

from repro.circuits.gates import Gate, GATES, gate_matrix, standard_gate
from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.library import (
    basis_state_preparation,
    calibration_circuit,
    ghz_bfs,
    mask_circuit,
    x_chain,
)
from repro.circuits.transpile import validate_against_coupling_map

__all__ = [
    "Gate",
    "GATES",
    "gate_matrix",
    "standard_gate",
    "Circuit",
    "Instruction",
    "ghz_bfs",
    "x_chain",
    "basis_state_preparation",
    "calibration_circuit",
    "mask_circuit",
    "validate_against_coupling_map",
]
