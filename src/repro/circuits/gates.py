"""Gate definitions and unitary matrices.

The gate set covers everything the paper's circuits need: the Pauli gates,
Hadamard, phase gates, the parametrised rotations RX/RY/RZ and the general
single-qubit unitary U3 (paper Eq. 1), plus the two-qubit CX/CZ/SWAP gates.

Matrix conventions
------------------
Single-qubit matrices act on the computational basis ``(|0>, |1>)``.
Two-qubit matrices are given in the basis ``|q1 q0>`` ordered
``(|00>, |01>, |10>, |11>)`` where the *first* qubit argument of the
instruction is the low bit — consistent with the little-endian outcome
convention of :mod:`repro.utils.bitstrings`.  For CX the first argument is
the control.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["Gate", "GATES", "gate_matrix", "standard_gate", "u3_matrix"]

_SQ2 = 1.0 / math.sqrt(2.0)

_SINGLE_QUBIT_MATRICES: Dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
}

# Two-qubit matrices in basis |q1 q0| = (00, 01, 10, 11); first instruction
# qubit is the low bit (and the control for cx).
_TWO_QUBIT_MATRICES: Dict[str, np.ndarray] = {
    # control = low bit: |c=1| columns (01, 11) flip the target bit.
    "cx": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
        ],
        dtype=complex,
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    ),
}


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """The general single-qubit rotation U3(theta, phi, lambda) — paper Eq. 1."""
    ct, st = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [ct, -np.exp(1j * lam) * st],
            [np.exp(1j * phi) * st, np.exp(1j * (phi + lam)) * ct],
        ],
        dtype=complex,
    )


def _rx(theta: float) -> np.ndarray:
    return u3_matrix(theta, -math.pi / 2.0, math.pi / 2.0)


def _ry(theta: float) -> np.ndarray:
    return u3_matrix(theta, 0.0, 0.0)


def _rz(lam: float) -> np.ndarray:
    return np.array([[np.exp(-0.5j * lam), 0], [0, np.exp(0.5j * lam)]], dtype=complex)


_PARAMETRIC = {"rx": (_rx, 1), "ry": (_ry, 1), "rz": (_rz, 1), "u3": (u3_matrix, 3)}


@dataclass(frozen=True)
class Gate:
    """A named gate with bound parameters.

    Attributes
    ----------
    name:
        Lower-case gate mnemonic ("x", "h", "cx", "rx", "u3", ...).
    params:
        Bound rotation angles; empty for non-parametric gates.
    """

    name: str
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        name = self.name.lower()
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if name in _PARAMETRIC:
            _, arity = _PARAMETRIC[name]
            if len(self.params) != arity:
                raise ValueError(
                    f"gate {name!r} takes {arity} parameter(s), got {len(self.params)}"
                )
        elif name in _SINGLE_QUBIT_MATRICES or name in _TWO_QUBIT_MATRICES:
            if self.params:
                raise ValueError(f"gate {name!r} takes no parameters")
        else:
            raise ValueError(f"unknown gate {name!r}")

    @property
    def num_qubits(self) -> int:
        """Arity of the gate (1 or 2)."""
        return 2 if self.name in _TWO_QUBIT_MATRICES else 1

    @property
    def matrix(self) -> np.ndarray:
        """The unitary matrix of the gate (copies are returned)."""
        return gate_matrix(self.name, self.params)

    def __repr__(self) -> str:
        if self.params:
            params = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({params})"
        return self.name


#: Names of all supported gates.
GATES: Tuple[str, ...] = tuple(
    sorted(set(_SINGLE_QUBIT_MATRICES) | set(_TWO_QUBIT_MATRICES) | set(_PARAMETRIC))
)


def gate_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """Unitary matrix of the named gate with the given parameters."""
    name = name.lower()
    if name in _SINGLE_QUBIT_MATRICES:
        return _SINGLE_QUBIT_MATRICES[name].copy()
    if name in _TWO_QUBIT_MATRICES:
        return _TWO_QUBIT_MATRICES[name].copy()
    if name in _PARAMETRIC:
        fn, arity = _PARAMETRIC[name]
        if len(params) != arity:
            raise ValueError(f"gate {name!r} takes {arity} parameter(s)")
        return fn(*params)
    raise ValueError(f"unknown gate {name!r}")


def standard_gate(name: str, *params: float) -> Gate:
    """Convenience constructor: ``standard_gate('rx', 0.5)``."""
    return Gate(name, tuple(params))
