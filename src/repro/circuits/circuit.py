"""The :class:`Circuit` IR.

A circuit is an ordered list of :class:`Instruction` (gate + qubit tuple)
plus an explicit set of measured qubits.  There is no classical register
abstraction: measurement is always a terminal computational-basis readout of
the declared measured qubits, which is all the paper's benchmarks need (its
measurement-error channels act at readout time only, §II-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Gate
from repro.utils.validation import check_num_qubits, check_qubit_indices

__all__ = ["Instruction", "Circuit"]


@dataclass(frozen=True)
class Instruction:
    """A gate applied to a tuple of qubits (in gate-argument order)."""

    gate: Gate
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        qs = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qs)
        if len(qs) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate!r} acts on {self.gate.num_qubits} qubit(s), "
                f"got {len(qs)}"
            )
        if len(set(qs)) != len(qs):
            raise ValueError(f"duplicate qubits in instruction: {qs}")

    def __repr__(self) -> str:
        return f"{self.gate!r} {list(self.qubits)}"


class Circuit:
    """An n-qubit circuit: ordered instructions plus measured qubits.

    Builder methods (``h``, ``x``, ``cx``, ...) return ``self`` for chaining:

    >>> qc = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
    >>> qc.depth()
    3
    """

    def __init__(self, num_qubits: int, name: str = "") -> None:
        self._num_qubits = check_num_qubits(num_qubits)
        self._instructions: List[Instruction] = []
        self._measured: Optional[Tuple[int, ...]] = None
        self.name = name or f"circuit-{num_qubits}q"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    @property
    def measured_qubits(self) -> Tuple[int, ...]:
        """Qubits read out at the end; defaults to all qubits if unset."""
        if self._measured is None:
            return tuple(range(self._num_qubits))
        return self._measured

    @property
    def measures_all(self) -> bool:
        return self.measured_qubits == tuple(range(self._num_qubits))

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"num_instructions={len(self._instructions)}, "
            f"measured={list(self.measured_qubits)})"
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def append(self, gate: Gate, qubits: Sequence[int]) -> "Circuit":
        """Append ``gate`` on ``qubits``; validates indices."""
        qs = check_qubit_indices(qubits, self._num_qubits)
        self._instructions.append(Instruction(gate, qs))
        return self

    def _g1(self, name: str, qubit: int, *params: float) -> "Circuit":
        return self.append(Gate(name, tuple(params)), (qubit,))

    def _g2(self, name: str, a: int, b: int) -> "Circuit":
        return self.append(Gate(name), (a, b))

    def i(self, qubit: int) -> "Circuit":
        """Identity gate on ``qubit``."""
        return self._g1("i", qubit)

    def x(self, qubit: int) -> "Circuit":
        """Pauli-X (bit flip) on ``qubit``."""
        return self._g1("x", qubit)

    def y(self, qubit: int) -> "Circuit":
        """Pauli-Y on ``qubit``."""
        return self._g1("y", qubit)

    def z(self, qubit: int) -> "Circuit":
        """Pauli-Z (phase flip) on ``qubit``."""
        return self._g1("z", qubit)

    def h(self, qubit: int) -> "Circuit":
        """Hadamard on ``qubit``."""
        return self._g1("h", qubit)

    def s(self, qubit: int) -> "Circuit":
        """Phase gate S on ``qubit``."""
        return self._g1("s", qubit)

    def t(self, qubit: int) -> "Circuit":
        """T gate on ``qubit``."""
        return self._g1("t", qubit)

    def rx(self, theta: float, qubit: int) -> "Circuit":
        """Rotation by ``theta`` about X on ``qubit``."""
        return self._g1("rx", qubit, theta)

    def ry(self, theta: float, qubit: int) -> "Circuit":
        """Rotation by ``theta`` about Y on ``qubit``."""
        return self._g1("ry", qubit, theta)

    def rz(self, lam: float, qubit: int) -> "Circuit":
        """Rotation by ``lam`` about Z on ``qubit``."""
        return self._g1("rz", qubit, lam)

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "Circuit":
        """General single-qubit rotation U3 (paper Eq. 1) on ``qubit``."""
        return self._g1("u3", qubit, theta, phi, lam)

    def cx(self, control: int, target: int) -> "Circuit":
        """CNOT with ``control`` controlling ``target``."""
        return self._g2("cx", control, target)

    def cz(self, a: int, b: int) -> "Circuit":
        """Controlled-Z between ``a`` and ``b`` (symmetric)."""
        return self._g2("cz", a, b)

    def swap(self, a: int, b: int) -> "Circuit":
        """SWAP qubits ``a`` and ``b``."""
        return self._g2("swap", a, b)

    def measure(self, qubits: Sequence[int]) -> "Circuit":
        """Declare the measured qubits (terminal readout)."""
        self._measured = check_qubit_indices(qubits, self._num_qubits)
        return self

    def measure_all(self) -> "Circuit":
        """Declare every qubit measured."""
        self._measured = tuple(range(self._num_qubits))
        return self

    # ------------------------------------------------------------------
    # Composition and analysis
    # ------------------------------------------------------------------
    def compose(self, other: "Circuit") -> "Circuit":
        """New circuit: self's instructions followed by other's.

        The measured-qubit declaration of ``other`` wins if set, matching
        how SIM/AIM append mask circuits before readout.
        """
        if other.num_qubits != self._num_qubits:
            raise ValueError(
                f"cannot compose circuits of {self._num_qubits} and "
                f"{other.num_qubits} qubits"
            )
        out = Circuit(self._num_qubits, name=f"{self.name}+{other.name}")
        out._instructions = list(self._instructions) + list(other._instructions)
        out._measured = other._measured if other._measured is not None else self._measured
        return out

    def copy(self, name: str = "") -> "Circuit":
        """Independent copy (instructions list is not shared)."""
        out = Circuit(self._num_qubits, name=name or self.name)
        out._instructions = list(self._instructions)
        out._measured = self._measured
        return out

    def with_measured(self, qubits: Sequence[int]) -> "Circuit":
        """Copy with a different measured-qubit declaration (JIGSAW subsets)."""
        out = self.copy()
        out.measure(qubits)
        return out

    def fingerprint(self) -> Tuple:
        """Content-based hashable identity: gates, qubits, measured set.

        Two circuits with equal fingerprints produce identical output
        distributions; backends key their caches on this (object identity
        is unsafe — ids of collected circuits get reused).
        """
        return (
            self._num_qubits,
            tuple(
                (inst.gate.name, inst.gate.params, inst.qubits)
                for inst in self._instructions
            ),
            self.measured_qubits,
        )

    def depth(self) -> int:
        """Circuit depth: longest chain of instructions sharing qubits."""
        level = [0] * self._num_qubits
        for inst in self._instructions:
            d = max(level[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                level[q] = d
        return max(level, default=0)

    def count_gates(self, name: Optional[str] = None) -> int:
        """Number of instructions, optionally filtered by gate name."""
        if name is None:
            return len(self._instructions)
        name = name.lower()
        return sum(1 for inst in self._instructions if inst.gate.name == name)

    def two_qubit_edges(self) -> List[Tuple[int, int]]:
        """Canonical (min, max) pairs touched by two-qubit gates, in order."""
        out = []
        for inst in self._instructions:
            if len(inst.qubits) == 2:
                a, b = inst.qubits
                out.append((min(a, b), max(a, b)))
        return out
