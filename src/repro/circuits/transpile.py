"""Coupling-map admissibility checks.

The paper deliberately avoids compiler optimisation ("Transpiler
optimisations have been disabled", §II-D) and constructs circuits directly on
the device topology, so this module only *validates* that a circuit's
two-qubit gates respect the coupling map — it never reroutes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import Circuit
from repro.topology.coupling_map import CouplingMap

__all__ = ["validate_against_coupling_map", "CouplingViolation"]


class CouplingViolation(ValueError):
    """A two-qubit gate acts on a pair outside the coupling map."""

    def __init__(self, violations: List[Tuple[int, Tuple[int, int]]]) -> None:
        self.violations = violations
        pairs = ", ".join(f"#{i}: {pair}" for i, pair in violations[:5])
        more = "" if len(violations) <= 5 else f" (+{len(violations) - 5} more)"
        super().__init__(f"two-qubit gates off the coupling map: {pairs}{more}")


def validate_against_coupling_map(
    circuit: Circuit, coupling_map: CouplingMap, *, strict: bool = True
) -> List[Tuple[int, Tuple[int, int]]]:
    """Check every two-qubit gate lies on a coupling-map edge.

    Returns the list of ``(instruction index, qubit pair)`` violations; with
    ``strict=True`` (default) raises :class:`CouplingViolation` instead when
    any exist.
    """
    if circuit.num_qubits > coupling_map.num_qubits:
        raise ValueError(
            f"circuit uses {circuit.num_qubits} qubits but the device has "
            f"{coupling_map.num_qubits}"
        )
    edge_set = set(coupling_map.edges)
    violations: List[Tuple[int, Tuple[int, int]]] = []
    for idx, inst in enumerate(circuit.instructions):
        if len(inst.qubits) == 2:
            a, b = inst.qubits
            pair = (min(a, b), max(a, b))
            if pair not in edge_set:
                violations.append((idx, pair))
    if strict and violations:
        raise CouplingViolation(violations)
    return violations
