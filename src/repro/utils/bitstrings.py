"""Bitstring codecs and vectorised bit-field kernels.

Conventions used throughout the library
---------------------------------------

* A measurement outcome over ``n`` qubits is an integer in ``[0, 2**n)``.
* Qubit ``q`` corresponds to bit position ``q`` (little-endian integers):
  outcome ``b`` has qubit ``q`` in state ``(b >> q) & 1``.
* The *string* rendering follows the standard quantum-computing convention of
  writing qubit ``n-1`` first ("big-endian strings"), i.e. for three qubits
  the outcome ``0b110`` renders as ``"110"`` meaning qubit 2 = 1, qubit 1 = 1,
  qubit 0 = 0.

All array-accepting functions are vectorised over NumPy integer arrays; the
sparse calibration kernels lean on :func:`extract_bits` and
:func:`deposit_bits` to decompose global outcome indices into a local patch
index and a remainder index without Python-level loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "int_to_bitstring",
    "bitstring_to_int",
    "int_to_bits",
    "bits_to_int",
    "bit_at",
    "parity",
    "extract_bits",
    "deposit_bits",
    "remainder_bits",
    "iter_basis_labels",
    "hamming_weight",
]


def int_to_bitstring(value: int, num_bits: int) -> str:
    """Render ``value`` as an ``num_bits``-character bitstring (qubit n-1 first).

    >>> int_to_bitstring(6, 3)
    '110'
    """
    if value < 0 or value >= (1 << num_bits):
        raise ValueError(f"value {value} does not fit in {num_bits} bits")
    return format(value, f"0{num_bits}b")


def bitstring_to_int(bitstring: str) -> int:
    """Parse a bitstring (qubit n-1 first) into an outcome integer.

    >>> bitstring_to_int('110')
    6
    """
    if not bitstring or any(c not in "01" for c in bitstring):
        raise ValueError(f"invalid bitstring {bitstring!r}")
    return int(bitstring, 2)


def int_to_bits(value: int, num_bits: int) -> np.ndarray:
    """Little-endian bit array of ``value``: element ``q`` is qubit ``q``."""
    return (np.asarray(value) >> np.arange(num_bits)) & 1


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (element ``q`` is qubit ``q``)."""
    out = 0
    for q, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit {q} has non-binary value {b!r}")
        out |= int(b) << q
    return out


def bit_at(values: np.ndarray | int, position: int) -> np.ndarray | int:
    """Bit of ``values`` at qubit ``position`` (vectorised)."""
    return (np.asarray(values) >> position) & 1


def parity(values: np.ndarray | int, num_bits: int) -> np.ndarray | int:
    """Parity (XOR of all bits) of each outcome in ``values``."""
    v = np.asarray(values).copy()
    result = np.zeros_like(v)
    for q in range(num_bits):
        result ^= (v >> q) & 1
    return result if result.ndim else int(result)


def hamming_weight(values: np.ndarray | int, num_bits: int) -> np.ndarray | int:
    """Number of set bits in each outcome."""
    v = np.asarray(values)
    result = np.zeros_like(v)
    for q in range(num_bits):
        result = result + ((v >> q) & 1)
    return result if result.ndim else int(result)


def extract_bits(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Gather the bits of ``values`` at ``positions`` into a compact local index.

    ``positions[k]`` becomes bit ``k`` of the result.  This is the
    "pext" (parallel bit extract) operation, vectorised over outcome arrays;
    it converts a global outcome index into the local index of a calibration
    patch acting on ``positions``.

    >>> extract_bits(np.array([0b1101]), [0, 2, 3])
    array([7])
    """
    v = np.asarray(values)
    out = np.zeros_like(v)
    for k, pos in enumerate(positions):
        out |= ((v >> pos) & 1) << k
    return out


def deposit_bits(local: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Scatter local-index bits back to global positions (inverse of extract).

    Bit ``k`` of ``local`` is placed at bit ``positions[k]`` of the result;
    all other bits are zero.

    >>> deposit_bits(np.array([7]), [0, 2, 3])
    array([13])
    """
    lv = np.asarray(local)
    out = np.zeros_like(lv)
    for k, pos in enumerate(positions):
        out |= ((lv >> k) & 1) << pos
    return out


def remainder_bits(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Clear the bits at ``positions``, keeping everything else in place.

    Together with :func:`extract_bits` this decomposes a global index into
    (local patch index, remainder index); :func:`deposit_bits` recombines.
    """
    v = np.asarray(values)
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    return v & ~mask


def iter_basis_labels(num_bits: int) -> Iterator[str]:
    """Iterate all ``2**num_bits`` bitstring labels in integer order."""
    for value in range(1 << num_bits):
        yield int_to_bitstring(value, num_bits)


def subset_mask(positions: Iterable[int]) -> int:
    """Integer mask with bits set at ``positions``."""
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    return mask
