"""Stochastic-matrix linear algebra used by calibration joining.

Calibration matrices are *column-stochastic*: ``C[observed, prepared]`` with
each column summing to one.  The CMC joining construction (paper Eqs. 5-7)
requires fractional powers ``C**(a/v)`` and inverses of such matrices.  Both
operations can leave the stochastic cone (small negative entries, complex
round-off), so every operation here comes with a guarded variant that
projects back onto real column-stochastic matrices.

The fractional power of a stochastic matrix is well defined whenever the
matrix is "embeddable" (eigenvalues off the negative real axis); for readout
confusion matrices — which are diagonally dominant perturbations of the
identity in every realistic regime — this always holds, but we guard against
pathological test inputs anyway.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = [
    "column_normalize",
    "is_column_stochastic",
    "nearest_stochastic",
    "fractional_stochastic_power",
    "stable_inverse",
    "clip_renormalize",
]

#: Tolerance used for stochasticity checks throughout the library.
STOCHASTIC_ATOL = 1e-8


def column_normalize(matrix: np.ndarray) -> np.ndarray:
    """Rescale each column of ``matrix`` to sum to one.

    Columns that sum to zero are replaced by the uniform distribution —
    this is the behaviour wanted when a calibration circuit received zero
    shots (no information → maximum-entropy column).
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {m.shape}")
    sums = m.sum(axis=0)
    out = np.empty_like(m)
    dead = np.abs(sums) < 1e-300
    if np.any(dead):
        out[:, dead] = 1.0 / m.shape[0]
    live = ~dead
    out[:, live] = m[:, live] / sums[live]
    return out


def is_column_stochastic(matrix: np.ndarray, atol: float = STOCHASTIC_ATOL) -> bool:
    """True iff ``matrix`` is real, non-negative, with unit column sums."""
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    if np.iscomplexobj(m) and np.abs(m.imag).max(initial=0.0) > atol:
        return False
    m = m.real if np.iscomplexobj(m) else m
    if m.min(initial=0.0) < -atol:
        return False
    return bool(np.allclose(m.sum(axis=0), 1.0, atol=max(atol, 1e-6)))


def nearest_stochastic(matrix: np.ndarray) -> np.ndarray:
    """Project a matrix onto column-stochastic form (clip negatives, renorm).

    This is the standard projection used after inverting or taking fractional
    powers of confusion matrices; for matrices already in the cone it is the
    identity up to round-off.
    """
    m = np.asarray(matrix)
    if np.iscomplexobj(m):
        m = m.real
    m = np.clip(m, 0.0, None)
    return column_normalize(m)


def clip_renormalize(vector: np.ndarray) -> np.ndarray:
    """Project a quasi-probability vector onto the simplex by clip + renorm."""
    v = np.asarray(vector, dtype=float)
    v = np.clip(v, 0.0, None)
    total = v.sum()
    if total <= 0.0:
        return np.full_like(v, 1.0 / v.size)
    return v / total


def fractional_stochastic_power(matrix: np.ndarray, exponent: float) -> np.ndarray:
    """Compute ``matrix ** exponent`` for a column-stochastic matrix.

    Uses the Schur-decomposition fractional power from SciPy.  The result is
    returned *unprojected* (its columns sum to one analytically, but tiny
    negative entries may appear): the CMC joining construction multiplies
    inverses of these powers against each other and relies on them
    telescoping exactly — ``C**0.5 @ C**0.5 == C`` — so projection is left to
    the end of the mitigation pipeline (:func:`clip_renormalize` /
    :func:`nearest_stochastic`).

    Parameters
    ----------
    matrix:
        Square column-stochastic matrix.
    exponent:
        Any real power; CMC uses rationals ``a / v`` with
        ``0 <= a <= v - 1``.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    if exponent == 0.0:
        return np.eye(m.shape[0])
    if exponent == 1.0:
        return m.copy()
    power = scipy.linalg.fractional_matrix_power(m, exponent)
    if np.iscomplexobj(power):
        # Round-off from complex-conjugate eigenvalue pairs; a genuine
        # imaginary component would indicate a non-embeddable matrix.
        if np.abs(power.imag).max(initial=0.0) > 1e-6:
            raise np.linalg.LinAlgError(
                "fractional power of calibration matrix has a significant "
                "imaginary part; matrix is too far from the identity"
            )
        power = power.real
    return power


def stable_inverse(matrix: np.ndarray, rcond: float = 1e-10) -> np.ndarray:
    """Invert a calibration matrix, falling back to pseudo-inverse.

    Confusion matrices are diagonally dominant and hence invertible in
    practice, but heavily under-sampled calibrations (e.g. the Full method at
    a constrained shot budget, paper Fig. 12) can produce singular estimates.
    """
    m = np.asarray(matrix, dtype=float)
    try:
        return np.linalg.inv(m)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(m, rcond=rcond)
