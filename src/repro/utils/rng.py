"""Deterministic random-number plumbing.

Every stochastic component in the library (noise sampling, shot sampling,
random topologies, JIGSAW's random patches, drift) takes a
``numpy.random.Generator`` and never touches global state, so whole
experiments are reproducible from a single integer seed.  Experiments fan a
root seed out into independent streams with :func:`spawn_rngs`, which uses
NumPy's ``SeedSequence`` spawning so streams stay independent no matter how
many are drawn.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Union

import numpy as np

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "derive_rng",
    "stable_seed",
    "stable_rng",
    "seed_to_int",
]

RandomState = Union[int, np.random.Generator, None]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` (int, Generator or None) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def derive_rng(seed: RandomState, *tokens: object) -> np.random.Generator:
    """Derive a generator from ``seed`` and a tuple of hashable tokens.

    Used where a component needs a stream that is stable across runs but
    distinct per logical role (e.g. per-week drift, per-qubit noise), without
    threading dozens of generators through call signatures.
    """
    base = seed if isinstance(seed, int) else 0
    mix = hash(tuple(tokens)) & 0x7FFFFFFF
    ss = np.random.SeedSequence([base & 0x7FFFFFFF, mix])
    return np.random.default_rng(ss)


def stable_seed(*tokens: object) -> int:
    """A 63-bit seed that is a pure function of ``tokens``.

    Unlike :func:`derive_rng`, which goes through Python's ``hash()`` (salted
    per process for strings), this digest is identical across interpreter
    processes — the property the parallel sweep engine relies on to make a
    process-pool run bit-identical to a serial one.  Tokens must have stable
    ``repr``s (ints, strs, bools, None, and nested tuples of those).
    """
    digest = hashlib.sha256(repr(tokens).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


def stable_rng(*tokens: object) -> np.random.Generator:
    """A Generator seeded from :func:`stable_seed` of ``tokens``."""
    return np.random.default_rng(np.random.SeedSequence(stable_seed(*tokens)))


def seed_to_int(seed: RandomState) -> int:
    """Collapse a :data:`RandomState` to an integer root seed.

    Integers pass through; a Generator (or ``None``) contributes one draw.
    The sweep engine requires integer roots so that every derived stream is
    reproducible from the spec alone.
    """
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return int(ensure_rng(seed).integers(0, 2**63 - 1))
