"""Shared low-level utilities: bit manipulation, stochastic linear algebra, RNG.

These modules are the vocabulary used by every other subpackage.  They contain
no quantum- or mitigation-specific logic; keeping them separate makes the
performance-critical kernels easy to profile and test in isolation.
"""

from repro.utils.bitstrings import (
    bit_at,
    bits_to_int,
    bitstring_to_int,
    extract_bits,
    deposit_bits,
    int_to_bits,
    int_to_bitstring,
    iter_basis_labels,
    parity,
)
from repro.utils.linalg import (
    column_normalize,
    fractional_stochastic_power,
    is_column_stochastic,
    nearest_stochastic,
    stable_inverse,
)
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

__all__ = [
    "bit_at",
    "bits_to_int",
    "bitstring_to_int",
    "extract_bits",
    "deposit_bits",
    "int_to_bits",
    "int_to_bitstring",
    "iter_basis_labels",
    "parity",
    "column_normalize",
    "fractional_stochastic_power",
    "is_column_stochastic",
    "nearest_stochastic",
    "stable_inverse",
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
]
