"""Argument-validation helpers shared across the public API.

All public entry points validate their inputs eagerly with these helpers so
that user errors surface as clear ``ValueError``/``TypeError`` messages at the
API boundary rather than as shape errors deep inside a kernel.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "check_num_qubits",
    "check_qubit_indices",
    "check_probability",
    "check_probability_vector",
    "check_shots",
]

#: Practical dense-simulation ceiling; vectors above this would not fit in
#: memory for the dense code paths (2**24 doubles = 128 MiB per vector).
MAX_DENSE_QUBITS = 24


def check_num_qubits(num_qubits: int, *, dense: bool = False) -> int:
    """Validate a qubit count; with ``dense=True`` enforce the memory ceiling."""
    if not isinstance(num_qubits, (int, np.integer)) or num_qubits < 1:
        raise ValueError(f"num_qubits must be a positive integer, got {num_qubits!r}")
    if dense and num_qubits > MAX_DENSE_QUBITS:
        raise ValueError(
            f"num_qubits={num_qubits} exceeds the dense-simulation ceiling of "
            f"{MAX_DENSE_QUBITS}; use the sparse code paths"
        )
    return int(num_qubits)


def check_qubit_indices(qubits: Sequence[int], num_qubits: int) -> tuple:
    """Validate a sequence of distinct qubit indices within range."""
    qs = tuple(int(q) for q in qubits)
    if len(set(qs)) != len(qs):
        raise ValueError(f"qubit indices must be distinct, got {qubits!r}")
    for q in qs:
        if q < 0 or q >= num_qubits:
            raise ValueError(f"qubit index {q} out of range for {num_qubits} qubits")
    return qs


def check_probability(p: float, name: str = "probability") -> float:
    """Validate a scalar probability in [0, 1]."""
    p = float(p)
    if not (0.0 <= p <= 1.0) or not np.isfinite(p):
        raise ValueError(f"{name} must lie in [0, 1], got {p!r}")
    return p


def check_probability_vector(vector: np.ndarray, atol: float = 1e-6) -> np.ndarray:
    """Validate a dense probability vector (non-negative, sums to one)."""
    v = np.asarray(vector, dtype=float)
    if v.ndim != 1:
        raise ValueError(f"expected a 1-D probability vector, got shape {v.shape}")
    if v.min(initial=0.0) < -atol:
        raise ValueError("probability vector has negative entries")
    if not np.isclose(v.sum(), 1.0, atol=atol):
        raise ValueError(f"probability vector sums to {v.sum()!r}, expected 1")
    return v


def check_shots(shots: int) -> int:
    """Validate a shot count."""
    if not isinstance(shots, (int, np.integer)) or shots < 0:
        raise ValueError(f"shots must be a non-negative integer, got {shots!r}")
    return int(shots)
