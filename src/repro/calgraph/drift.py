"""Drift detection: which calibration nodes does a new noise model dirty?

The §VII-A observation is that drift is *local* — a few qubits or edges
move between calibration cycles while the rest of the device holds.  The
scheduler turns that locality into savings by keying every measurement
node on a **local noise fingerprint**: a digest of exactly the noise-model
content that can reach the node's measured outcome distribution.

That content is provably small.  A node's calibration circuits apply X
gates to the node's own qubits and read out *only* those qubits, and the
backend samples from the marginal distribution over the measured register
(:meth:`MeasurementErrorChannel.apply_marginal` applies a factor only when
all of its qubits are measured — unmeasured qubits fire no measurement
pulses).  So the node's distribution is a pure function of

* the gate-error rates (``error_1q``/``error_2q`` — the node's X gates),
* the channel factors whose qubit sets lie **inside** the node's qubits
  (order included: factors compose in sequence), and
* the register size.

Everything else — other qubits' readout errors, crosstalk on other edges —
cannot reach it.  A drifted model therefore dirties exactly the nodes
whose fingerprint changed; clean nodes' stored states are bit-identical to
what re-measuring them under the new model would produce, which is what
makes incremental recalibration *exactly* equal to a from-scratch run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.calgraph.graph import CalibrationDAG
from repro.noise.models import NoiseModel

__all__ = ["array_digest", "node_fingerprint", "dirty_nodes", "dirty_closure"]


def array_digest(array: np.ndarray) -> str:
    """SHA-256 of an array's exact bytes (dtype and shape included)."""
    arr = np.ascontiguousarray(array)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def node_fingerprint(model: NoiseModel, qubits: Sequence[int]) -> str:
    """Digest of the noise-model content local to ``qubits``.

    Bit-exact: two models agree on a node's fingerprint iff the node's
    calibration circuits would produce identical pre-sampling
    distributions under both (see module docstring for the argument).
    """
    qs = frozenset(int(q) for q in qubits)
    h = hashlib.sha256()
    h.update(
        repr(
            (
                model.num_qubits,
                float(model.error_1q),
                float(model.error_2q),
                tuple(sorted(qs)),
            )
        ).encode()
    )
    for factor in model.measurement_channel.factors:
        if set(factor.qubits) <= qs:
            h.update(repr(factor.qubits).encode())
            h.update(array_digest(factor.matrix).encode())
    return h.hexdigest()[:16]


def dirty_nodes(
    graph: CalibrationDAG, old: NoiseModel, new: NoiseModel
) -> List[str]:
    """Measurement nodes whose local fingerprint differs between models."""
    out = []
    for name in graph.measure_nodes():
        node = graph.node(name)
        if node_fingerprint(old, node.qubits) != node_fingerprint(new, node.qubits):
            out.append(name)
    return sorted(out)


def dirty_closure(
    graph: CalibrationDAG, dirty: Iterable[str]
) -> Tuple[List[str], List[str]]:
    """``(frontier, descendants)``: the dirty nodes plus everything
    downstream of them (derived nodes whose upstream digests change must
    re-derive, though they spend no shots)."""
    frontier = sorted(set(dirty))
    return frontier, graph.descendants(frontier)


def fingerprint_table(
    graph: CalibrationDAG, model: NoiseModel
) -> Dict[str, str]:
    """Fingerprint of every measurement node under ``model``."""
    return {
        name: node_fingerprint(model, graph.node(name).qubits)
        for name in graph.measure_nodes()
    }
