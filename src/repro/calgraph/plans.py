"""Per-method calibration graphs, and the state ⇔ node-states bijection.

Two jobs:

* :func:`build_calibration_graph` — the executable DAG for a mitigation
  method on a device: per-qubit readout nodes (Linear, CMC's patchless
  qubits), per-edge patch nodes (CMC), per-pair profiling nodes feeding a
  derived error-map node (CMC-ERR), or the single whole-register node
  (Full).  Measurement nodes prepare local basis states and read out
  **only their own qubits**, which is what makes each node a pure function
  of its local noise fingerprint (see :mod:`repro.calgraph.drift`).

* :func:`decompose_calibration_state` / :func:`assemble_calibration_state`
  — the lossless bijection between a mitigator's monolithic
  ``calibration_state()`` and per-node payloads.  ``assemble(decompose(s))``
  is bit-identical to ``s`` for every mitigator (pinned in
  ``tests/test_calgraph.py``); it is how graph-measured states load into
  the unchanged mitigators, and how ``Mitigator.calibration_plan()`` is
  implemented.

Note the documented protocol difference: the *graph* measures each patch
with dedicated subset-readout circuits (local, independently seeded),
while monolithic ``prepare()`` shares whole-register rounds across
patches.  Both are valid calibrations of the same channel; they are
deliberately **not** sample-identical — the bit-identity claims are
decompose/assemble round trips and incremental-vs-full graph runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.calgraph.graph import CalGraphError, CalibrationDAG, CalNode, UnknownNodeError
from repro.circuits.circuit import Circuit
from repro.core.calibration import CalibrationMatrix
from repro.core.err import (
    CMCERRMitigator,
    build_error_coupling_map,
    edge_correlation_weights,
)
from repro.topology.coupling_map import CouplingMap

__all__ = [
    "GRAPH_METHODS",
    "build_calibration_graph",
    "decompose_calibration_state",
    "assemble_calibration_state",
]

#: Methods with a node-decomposable persistent calibration state.
GRAPH_METHODS = ("Full", "Linear", "CMC", "CMC-ERR")


# ----------------------------------------------------------------------
# Node names
# ----------------------------------------------------------------------
def _qubit_name(q: int) -> str:
    return f"qubit:{q}"

def _edge_name(patch: Sequence[int], prefix: str = "edge") -> str:
    return f"{prefix}:" + "-".join(str(q) for q in patch)


def _parse_qubits(name: str) -> Tuple[int, ...]:
    return tuple(int(tok) for tok in name.split(":", 1)[1].split("-"))


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _measure_basis(qubits: Tuple[int, ...], payload_key: str = "cal"):
    """Executor: prepare every basis state on ``qubits``, read out only
    ``qubits``, fold into one calibration matrix."""

    def run(backend, shots, budget):
        n = backend.num_qubits
        dim = 1 << len(qubits)
        circuits = []
        for prepared in range(dim):
            c = Circuit(n, name=f"calnode-{'-'.join(map(str, qubits))}-p{prepared}")
            for k, q in enumerate(qubits):
                if (prepared >> k) & 1:
                    c.x(q)
            c.measure(qubits)
            circuits.append(c)
        results = backend.run_batch(circuits, shots, budget=budget, tag="calibration")
        cal = CalibrationMatrix.from_counts(qubits, dict(enumerate(results)))
        return {payload_key: cal}, shots * dim, dim

    return run


def _derive_errmap(num_qubits: int, max_edges: Optional[int]):
    """Executor: Algorithm 2 over the upstream pair calibrations."""

    def run(dep_payloads: Mapping[str, Any]):
        pair_cals = {}
        for payload in dep_payloads.values():
            cal = payload["cal"]
            pair_cals[tuple(cal.qubits)] = cal
        singles = CMCERRMitigator._marginal_singles(pair_cals)
        weights = edge_correlation_weights(singles, pair_cals)
        error_map = build_error_coupling_map(
            num_qubits, weights, max_edges=max_edges
        )
        return {"error_map": error_map, "weights": weights}

    return run


# ----------------------------------------------------------------------
# Graph builders
# ----------------------------------------------------------------------
def build_calibration_graph(
    method: str,
    coupling_map: CouplingMap,
    *,
    cmc_k: int = 1,
    edges: Optional[Sequence[Sequence[int]]] = None,
    err_locality: int = 3,
    err_max_edges: Optional[int] = None,
    full_max_qubits: int = 12,
) -> CalibrationDAG:
    """The calibration DAG for ``method`` on ``coupling_map``."""
    n = coupling_map.num_qubits
    dag = CalibrationDAG()

    if method == "Full":
        if n > full_max_qubits:
            raise CalGraphError(
                f"Full calibration graph over {n} qubits exceeds the "
                f"{full_max_qubits}-qubit cap (2^n circuits)"
            )
        qubits = tuple(range(n))
        dag.add_node(
            CalNode("full", "measure", qubits, _measure_basis(qubits, "calibration"))
        )
        return dag

    if method == "Linear":
        for q in range(n):
            dag.add_node(CalNode(_qubit_name(q), "measure", (q,), _measure_basis((q,))))
        return dag

    if method == "CMC":
        patches = tuple(
            coupling_map.edges
            if edges is None
            else sorted({tuple(sorted(int(q) for q in p)) for p in edges})
        )
        covered = {q for p in patches for q in p}
        for patch in patches:
            dag.add_node(
                CalNode(_edge_name(patch), "measure", patch, _measure_basis(patch))
            )
        for q in range(n):
            if q not in covered:
                dag.add_node(
                    CalNode(_qubit_name(q), "measure", (q,), _measure_basis((q,)))
                )
        return dag

    if method == "CMC-ERR":
        candidates = coupling_map.pairs_within(err_locality) or list(
            coupling_map.edges
        )
        pair_names = []
        for pair in candidates:
            name = _edge_name(pair, "pair")
            dag.add_node(CalNode(name, "measure", tuple(pair), _measure_basis(tuple(pair))))
            pair_names.append(name)
        dag.add_node(
            CalNode(
                "errmap",
                "derive",
                (),
                _derive_errmap(n, err_max_edges),
                params={"max_edges": err_max_edges},
            ),
            deps=sorted(pair_names),
        )
        return dag

    raise CalGraphError(
        f"no calibration graph for method {method!r}; graph-capable methods: "
        f"{', '.join(GRAPH_METHODS)}"
    )


# ----------------------------------------------------------------------
# State decomposition / assembly
# ----------------------------------------------------------------------
def decompose_calibration_state(method: str, state: Mapping[str, Any]) -> Dict[str, Any]:
    """Split a monolithic ``calibration_state()`` into per-node payloads."""
    if method == "Full":
        return {"full": {"calibration": state["calibration"]}}
    if method == "Linear":
        return {
            _qubit_name(q): {"cal": cal} for q, cal in state["factors"].items()
        }
    if method == "CMC":
        out: Dict[str, Any] = {
            _edge_name(patch): {"cal": cal}
            for patch, cal in state["patch_calibrations"].items()
        }
        for q, cal in state["isolated"].items():
            out[_qubit_name(q)] = {"cal": cal}
        return out
    if method == "CMC-ERR":
        out = {
            "errmap": {
                "error_map": state["error_map"],
                "weights": state["weights"],
            }
        }
        inner = state["inner"]
        for patch, cal in inner["patch_calibrations"].items():
            out[_edge_name(patch, "pair")] = {"cal": cal}
        for q, cal in inner["isolated"].items():
            out[_qubit_name(q)] = {"cal": cal}
        return out
    raise CalGraphError(f"no state decomposition for method {method!r}")


def assemble_calibration_state(
    method: str, node_states: Mapping[str, Any]
) -> Dict[str, Any]:
    """Inverse of :func:`decompose_calibration_state`.

    Accepts a superset of the needed nodes (a CMC-ERR graph run measures
    *every* candidate pair; assembly selects the error map's edges), and
    raises :class:`UnknownNodeError` when a required node is absent.
    """
    def _payload(name: str) -> Any:
        try:
            return node_states[name]
        except KeyError:
            raise UnknownNodeError(
                f"assembly needs node {name!r}, which is not present"
            ) from None

    if method == "Full":
        return {"calibration": _payload("full")["calibration"]}
    if method == "Linear":
        return {
            "factors": {
                _parse_qubits(name)[0]: payload["cal"]
                for name, payload in node_states.items()
                if name.startswith("qubit:")
            }
        }
    if method == "CMC":
        return {
            "patch_calibrations": {
                _parse_qubits(name): payload["cal"]
                for name, payload in node_states.items()
                if name.startswith("edge:")
            },
            "isolated": {
                _parse_qubits(name)[0]: payload["cal"]
                for name, payload in node_states.items()
                if name.startswith("qubit:")
            },
        }
    if method == "CMC-ERR":
        errmap = _payload("errmap")
        error_map: CouplingMap = errmap["error_map"]
        return {
            "error_map": error_map,
            "weights": errmap["weights"],
            "inner": {
                "patch_calibrations": {
                    edge: _payload(_edge_name(edge, "pair"))["cal"]
                    for edge in error_map.edges
                },
                "isolated": {
                    _parse_qubits(name)[0]: payload["cal"]
                    for name, payload in node_states.items()
                    if name.startswith("qubit:")
                },
            },
        }
    raise CalGraphError(f"no state assembly for method {method!r}")
