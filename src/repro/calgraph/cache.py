"""Node-granular calibration persistence: the `CalibrationGraphCache`.

Where :class:`~repro.store.calcache.PersistentCalibrationCache` stores one
monolithic blob per ``(device, method)`` calibration event, this adapter
stores **one artifact per DAG node**, keyed by

``(device, method, node, qubits, shots, seed, local-noise-fingerprint,
upstream-digests, params)``

so a drifted model invalidates exactly the nodes whose local fingerprint
changed — everything else remains addressable and restores as a warm hit.
Upstream digests chain: a derived node's key embeds the content digests of
its dependencies' keys, so re-measuring any upstream node automatically
re-keys (and therefore re-derives) everything downstream, without any
explicit invalidation pass.

Both layers share the same two-tier shape (memory dict over the artifact
store) and the same version-refusal policy — node states are bit-identity
claims, which only hold within one engine version.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro._version import __version__
from repro.calgraph.state import CalNodeState
from repro.pipeline.cache import CacheStats, CalibrationRecord
from repro.store.artifacts import ArtifactStore, canonical_key_digest

__all__ = ["CalibrationGraphCache", "node_key", "node_digest"]

#: Artifact namespace for calibration DAG node states.
KIND = "calgraph-node"


def node_key(
    *,
    device: str,
    method: str,
    node: str,
    qubits: Tuple[int, ...],
    shots: int,
    seed: int,
    fingerprint: str,
    deps: Mapping[str, str],
    params: Mapping[str, object] = (),
) -> dict:
    """The canonical artifact key of one calibration node's state.

    ``deps`` maps dependency node names to *their* key digests — the
    chaining that cascades invalidation downstream.  Everything in the key
    is a JSON primitive, so it digests through the store's canonical
    scheme.
    """
    return {
        "kind": KIND,
        "version": __version__,
        "key": {
            "device": str(device),
            "method": str(method),
            "node": str(node),
            "qubits": tuple(int(q) for q in qubits),
            "shots": int(shots),
            "seed": int(seed),
            "noise": str(fingerprint),
            "deps": {str(k): str(v) for k, v in sorted(dict(deps).items())},
            "params": {str(k): v for k, v in sorted(dict(params).items())},
        },
    }


def node_digest(key: dict) -> str:
    """Content digest of a node key — the token dependents embed."""
    return canonical_key_digest(key)


class CalibrationGraphCache:
    """Two-tier (memory, artifact store) cache of per-node calibration state.

    The memory tier is keyed by the node key's digest string; the store
    tier holds ``{"state": CalNodeState, "shots_spent": .., "circuits_executed": ..}``
    payloads under the full key, reusing the sweep cache's
    :class:`~repro.pipeline.cache.CalibrationRecord` /
    :class:`~repro.pipeline.cache.CacheStats` accounting so scheduler
    reports read the same way as engine cache reports.

    Like the sweep-level cache, node states inherit the store's payload
    encoding (sparse/compressed under compact mode, pre-1.8 dense bytes
    otherwise); node-key digests never depend on the encoding, so a
    repacked store keeps every node warm.
    """

    def __init__(self, store: ArtifactStore) -> None:
        self._store = store
        self._entries: Dict[str, CalibrationRecord] = {}
        self._stats = CacheStats()

    @property
    def artifact_store(self) -> ArtifactStore:
        return self._store

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Tiered reads
    # ------------------------------------------------------------------
    def _fetch_from_disk(self, key: dict, digest: str) -> Optional[CalibrationRecord]:
        payload = self._store.get(key)
        if payload is None:
            return None
        record = CalibrationRecord(
            state=payload["state"],
            shots_spent=int(payload["shots_spent"]),
            circuits_executed=int(payload["circuits_executed"]),
        )
        self._entries[digest] = record
        return record

    def peek(self, key: dict) -> Optional[CalibrationRecord]:
        """Stat-free probe through both tiers (memory, then disk)."""
        digest = node_digest(key)
        record = self._entries.get(digest)
        if record is not None:
            return record
        return self._fetch_from_disk(key, digest)

    def lookup(self, key: dict) -> Optional[CalibrationRecord]:
        """Probe both tiers, counting a hit (and its saved work) when found."""
        digest = node_digest(key)
        record = self._entries.get(digest)
        if record is None:
            record = self._fetch_from_disk(key, digest)
        if record is None:
            return None
        self._stats.hits += 1
        self._stats.saved_shots += record.shots_spent
        self._stats.saved_circuits += record.circuits_executed
        return record

    def contains(self, key: dict) -> bool:
        """Key-presence probe that never deserializes the payload."""
        if node_digest(key) in self._entries:
            return True
        return self._store.contains(key)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def store(
        self,
        key: dict,
        state: CalNodeState,
        shots_spent: int,
        circuits_executed: int,
    ) -> str:
        """Write-through to both tiers; returns the node key's digest."""
        digest = node_digest(key)
        self._stats.misses += 1
        record = CalibrationRecord(
            state=state,
            shots_spent=int(shots_spent),
            circuits_executed=int(circuits_executed),
        )
        self._entries[digest] = record
        self._store.put(
            key,
            {
                "state": state,
                "shots_spent": int(shots_spent),
                "circuits_executed": int(circuits_executed),
            },
        )
        return digest

    def stats(self) -> CacheStats:
        """Counters so far (live object; copy if you need a snapshot)."""
        return self._stats

    def clear(self) -> None:
        """Drop the memory tier (the store tier is durable by design)."""
        self._entries.clear()
