"""The calibration DAG: nodes, dependencies, topological order, DOT dump.

Mirrors the ``CalibrationGraph`` idiom of lblQubic/chipcalibration — a
networkx ``DiGraph`` whose nodes are calibration steps and whose edges are
prerequisite relations, executed in topological order with failed
predecessors poisoning their descendants — but keeps the graph *pure
structure*: execution, budgets and persistence live in
:mod:`repro.calgraph.scheduler`, so the same graph object can be planned
against a store, diffed against a drifted noise model, or rendered to DOT
without touching a backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

__all__ = [
    "CalGraphError",
    "CyclicGraphError",
    "UnknownNodeError",
    "CalNode",
    "CalibrationDAG",
]


class CalGraphError(Exception):
    """Base class for calibration-graph structural errors."""


class CyclicGraphError(CalGraphError):
    """The dependency relation contains a cycle — refusal, not recovery."""


class UnknownNodeError(CalGraphError):
    """A referenced node name does not exist in the graph."""


#: Executor signature: ``run(backend, shots, budget) -> (payload, shots, circuits)``
#: for measurement nodes, ``run(dep_payloads) -> payload`` for derived nodes.
NodeRunner = Callable[..., Any]


@dataclass(frozen=True)
class CalNode:
    """One calibration step.

    ``qubits`` is the set of device qubits the step reads out — the
    locality footprint drift detection fingerprints (empty for derived
    nodes, whose identity is entirely their upstream digests).  ``params``
    carries extra identity tokens (protocol variants) into the node's
    store key.
    """

    name: str
    kind: str  # "measure" | "derive" | "opaque" (structure-only, CLI specs)
    qubits: Tuple[int, ...] = ()
    run: Optional[NodeRunner] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", dict(self.params))
        if self.kind not in ("measure", "derive", "opaque"):
            raise ValueError(f"unknown node kind {self.kind!r}")
        if not self.name:
            raise ValueError("node name must be non-empty")


class CalibrationDAG:
    """Calibration steps plus prerequisite edges, kept acyclic by construction.

    ``add_node`` requires every dependency to already exist (the natural
    build order for calibration plans, and it makes cycles impossible);
    :meth:`from_spec` accepts arbitrary name/deps listings — the CLI's
    ``--graph-json`` surface — and *refuses* cyclic or dangling specs with
    typed errors instead of hanging the topological sort.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: CalNode, deps: Iterable[str] = ()) -> "CalibrationDAG":
        if node.name in self._g:
            raise CalGraphError(f"duplicate node {node.name!r}")
        dep_names = list(deps)
        for dep in dep_names:
            if dep not in self._g:
                raise UnknownNodeError(
                    f"node {node.name!r} depends on unknown node {dep!r}"
                )
        self._g.add_node(node.name, node=node)
        for dep in dep_names:
            self._g.add_edge(dep, node.name)
        return self

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "CalibrationDAG":
        """Build a structure-only graph from ``{"nodes": [{name, deps}]}``.

        Nodes are ``opaque`` (no executors); the graph is still plannable
        and rendarable.  Unknown dependency names raise
        :class:`UnknownNodeError`; cycles raise :class:`CyclicGraphError`.
        """
        entries = spec.get("nodes")
        if not isinstance(entries, list) or not entries:
            raise CalGraphError("graph spec needs a non-empty 'nodes' list")
        dag = cls()
        names = []
        for entry in entries:
            name = entry.get("name") if isinstance(entry, Mapping) else None
            if not isinstance(name, str) or not name:
                raise CalGraphError("every graph node needs a string 'name'")
            if name in dag._g:
                raise CalGraphError(f"duplicate node {name!r}")
            qubits = tuple(entry.get("qubits", ()))
            dag._g.add_node(name, node=CalNode(name, "opaque", qubits))
            names.append(name)
        known = set(names)
        for entry in entries:
            for dep in entry.get("deps", ()):
                if dep not in known:
                    raise UnknownNodeError(
                        f"node {entry['name']!r} depends on unknown node {dep!r}"
                    )
                dag._g.add_edge(dep, entry["name"])
        if not nx.is_directed_acyclic_graph(dag._g):
            cycle = nx.find_cycle(dag._g)
            path = " -> ".join(a for a, _ in cycle) + f" -> {cycle[0][0]}"
            raise CyclicGraphError(f"calibration graph is cyclic: {path}")
        return dag

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._g

    def names(self) -> List[str]:
        return list(self._g.nodes)

    def node(self, name: str) -> CalNode:
        try:
            return self._g.nodes[name]["node"]
        except KeyError:
            raise UnknownNodeError(f"unknown node {name!r}") from None

    def deps(self, name: str) -> Tuple[str, ...]:
        """Direct prerequisites of ``name`` (sorted for stable keys)."""
        self.node(name)
        return tuple(sorted(self._g.predecessors(name)))

    def topological(self) -> List[str]:
        """Execution order; sorted within ties so runs are reproducible."""
        try:
            return list(nx.lexicographical_topological_sort(self._g))
        except nx.NetworkXUnfeasible:
            raise CyclicGraphError("calibration graph is cyclic") from None

    def descendants(self, names: Iterable[str]) -> List[str]:
        """Every node downstream of any of ``names`` (excluding them)."""
        out: set = set()
        for name in names:
            self.node(name)
            out.update(nx.descendants(self._g, name))
        return sorted(out)

    def measure_nodes(self) -> List[str]:
        return [n for n in self._g.nodes if self.node(n).kind == "measure"]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dot(self, title: str = "calibration") -> str:
        """Graphviz DOT dump (deterministic ordering, shell-safe names)."""
        lines = [f'digraph "{title}" {{', "  rankdir=LR;"]
        for name in self.topological():
            node = self.node(name)
            label = name
            if node.qubits:
                label += f"\\nq={list(node.qubits)}"
            shape = {"measure": "box", "derive": "ellipse"}.get(node.kind, "diamond")
            lines.append(f'  "{name}" [label="{label}", shape={shape}];')
        for a, b in sorted(self._g.edges):
            lines.append(f'  "{a}" -> "{b}";')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"CalibrationDAG(nodes={self._g.number_of_nodes()}, "
            f"edges={self._g.number_of_edges()})"
        )
