"""The persisted unit of the calibration DAG: one node's state.

Lives in its own leaf module so that :mod:`repro.store.codecs` can encode
node states without importing the rest of the calgraph package (which
imports the store right back — the same cycle-avoidance reason
:mod:`repro._version` is a leaf).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["CalNodeState"]


@dataclass(frozen=True)
class CalNodeState:
    """One calibration node's measured (or derived) state.

    ``payload`` is whatever the node's executor produced — a
    ``{"cal": CalibrationMatrix}`` for per-qubit/per-edge measurement
    nodes, ``{"error_map": ..., "weights": ...}`` for the ERR derivation
    node — restricted to shapes the store codec round-trips bit-exactly.
    ``fingerprint`` records the local-noise digest the state was measured
    under (empty for derived nodes, whose identity lives in their
    upstream digests).
    """

    name: str
    kind: str  # "measure" | "derive"
    qubits: Tuple[int, ...]
    payload: Any
    fingerprint: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if self.kind not in ("measure", "derive"):
            raise ValueError(f"unknown node state kind {self.kind!r}")
