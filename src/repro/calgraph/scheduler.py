"""Topological execution of a calibration DAG against a store-backed cache.

The scheduler walks the graph in (lexicographical) topological order and,
for every node, resolves its store key — device, method, node identity,
shots, seed, the node's *local noise fingerprint*, and the digests of its
dependencies' keys — then either

* **restores** a cached state (memory or store tier), replaying the
  recorded ledger spend through the :class:`~repro.backends.budget.ShotBudget`
  replay discipline so warm and cold runs charge identically, or
* **executes** the node cold: the backend is reseeded from the node key's
  digest (``stable_rng("calgraph", digest)``), so a node's measured state
  is a pure function of its key — the property that makes an incremental
  run after localised drift *bit-identical* to a from-scratch run of the
  whole graph under the drifted model, or
* **skips** the node because a predecessor failed (``on_failure="skip"``,
  the chipcalibration semantics) — or aborts the whole run when
  constructed with ``on_failure="abort"``.

Because fingerprints and dep digests fold into the key, "drift detection"
needs no explicit diffing pass at run time: k-edge-localised drift re-keys
exactly the k affected measurement nodes (plus their derived descendants,
which re-derive from restored-or-fresh payloads without spending shots),
and every other node resolves to its existing artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.calgraph.cache import CalibrationGraphCache, node_digest, node_key
from repro.calgraph.drift import node_fingerprint
from repro.calgraph.graph import CalGraphError, CalibrationDAG
from repro.calgraph.state import CalNodeState
from repro.utils.rng import stable_rng

__all__ = ["CalibrationScheduler", "NodePlan", "SchedulerReport"]

#: Node outcomes a run can record.
EXECUTED = "executed"
RESTORED = "restored"
SKIPPED = "skipped"
FAILED = "failed"


def _count_node(outcome: str) -> None:
    """Calgraph-tier cache accounting: restored nodes are hits, executed
    nodes are misses (same semantics as the monolithic tier: a miss means
    a cold calibration actually ran), and skipped/failed nodes land in a
    separate outcome counter so DAG health is scrapeable."""
    telemetry = obs.active()
    if telemetry is None:
        return
    if outcome == RESTORED or outcome == EXECUTED:
        telemetry.counter(
            "repro_calcache_lookups_total",
            "Calibration cache lookups by tier and result",
            ("tier", "result"),
        ).labels(
            tier="calgraph",
            result="hit" if outcome == RESTORED else "miss",
        ).inc()
    telemetry.counter(
        "repro_calgraph_nodes_total",
        "Calibration DAG node outcomes",
        ("outcome",),
    ).labels(outcome=outcome).inc()


@dataclass(frozen=True)
class NodePlan:
    """One node's resolved identity and cache disposition."""

    name: str
    kind: str
    qubits: Tuple[int, ...]
    digest: str
    cached: bool
    deps: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "qubits": list(self.qubits),
            "digest": self.digest,
            "cached": self.cached,
            "deps": list(self.deps),
        }


@dataclass
class SchedulerReport:
    """What a :meth:`CalibrationScheduler.run` actually did."""

    outcomes: Dict[str, str] = field(default_factory=dict)
    states: Dict[str, CalNodeState] = field(default_factory=dict)
    fresh_shots: int = 0
    fresh_circuits: int = 0
    replayed_shots: int = 0
    replayed_circuits: int = 0
    errors: Dict[str, str] = field(default_factory=dict)

    def names(self, outcome: str) -> List[str]:
        return sorted(n for n, o in self.outcomes.items() if o == outcome)

    @property
    def executed(self) -> List[str]:
        return self.names(EXECUTED)

    @property
    def restored(self) -> List[str]:
        return self.names(RESTORED)

    @property
    def skipped(self) -> List[str]:
        return self.names(SKIPPED)

    @property
    def failed(self) -> List[str]:
        return self.names(FAILED)

    def node_states(self) -> Dict[str, Any]:
        """``{node name: payload}`` for every node with a state — the shape
        :func:`repro.calgraph.plans.assemble_calibration_state` consumes."""
        return {name: state.payload for name, state in self.states.items()}

    def to_dict(self) -> dict:
        return {
            "outcomes": dict(sorted(self.outcomes.items())),
            "executed": self.executed,
            "restored": self.restored,
            "skipped": self.skipped,
            "failed": self.failed,
            "fresh_shots": self.fresh_shots,
            "fresh_circuits": self.fresh_circuits,
            "replayed_shots": self.replayed_shots,
            "replayed_circuits": self.replayed_circuits,
            "errors": dict(sorted(self.errors.items())),
        }


class CalibrationScheduler:
    """Executes a :class:`~repro.calgraph.graph.CalibrationDAG` incrementally.

    Parameters
    ----------
    graph:
        The DAG to schedule (must carry executors on measure/derive nodes
        for :meth:`run`; :meth:`plan` works on any graph).
    cache:
        Node-granular store adapter; all reuse flows through it.
    device:
        Device identity token in every node key (profile name or an
        ``architecture:n`` label).
    method:
        Mitigation method the graph calibrates (part of every key).
    shots_per_node:
        Shots per calibration circuit within each measurement node.
    seed:
        Logical calibration seed; folded into node keys so distinct seeds
        never alias.
    on_failure:
        ``"skip"`` poisons a failed node's descendants and continues;
        ``"abort"`` re-raises the node's exception immediately.
    """

    def __init__(
        self,
        graph: CalibrationDAG,
        cache: CalibrationGraphCache,
        *,
        device: str,
        method: str,
        shots_per_node: int,
        seed: int = 0,
        on_failure: str = "skip",
    ) -> None:
        if on_failure not in ("skip", "abort"):
            raise ValueError("on_failure must be 'skip' or 'abort'")
        if shots_per_node < 1:
            raise ValueError("shots_per_node must be positive")
        self._graph = graph
        self._cache = cache
        self._device = str(device)
        self._method = str(method)
        self._shots = int(shots_per_node)
        self._seed = int(seed)
        self._on_failure = on_failure

    @property
    def graph(self) -> CalibrationDAG:
        return self._graph

    # ------------------------------------------------------------------
    # Key resolution
    # ------------------------------------------------------------------
    def _resolve_keys(self, model) -> Dict[str, dict]:
        """Every node's store key, in topological order.

        Dep digests chain through the dict as it fills — topological order
        guarantees a node's dependencies are already resolved.
        """
        keys: Dict[str, dict] = {}
        digests: Dict[str, str] = {}
        for name in self._graph.topological():
            node = self._graph.node(name)
            fingerprint = (
                node_fingerprint(model, node.qubits)
                if node.kind == "measure"
                else ""
            )
            key = node_key(
                device=self._device,
                method=self._method,
                node=name,
                qubits=node.qubits,
                shots=self._shots if node.kind == "measure" else 0,
                seed=self._seed,
                fingerprint=fingerprint,
                deps={dep: digests[dep] for dep in self._graph.deps(name)},
                params=node.params,
            )
            keys[name] = key
            digests[name] = node_digest(key)
        return keys

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, model) -> List[NodePlan]:
        """Resolve every node's key against the cache, without executing.

        The ``cached=False`` measurement nodes are exactly the dirty
        frontier a :meth:`run` would execute; ``cached=False`` derived
        nodes are the descendants that would re-derive.
        """
        keys = self._resolve_keys(model)
        plans = []
        for name in self._graph.topological():
            node = self._graph.node(name)
            key = keys[name]
            plans.append(
                NodePlan(
                    name=name,
                    kind=node.kind,
                    qubits=node.qubits,
                    digest=node_digest(key),
                    cached=self._cache.contains(key),
                    deps=self._graph.deps(name),
                )
            )
        return plans

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, backend, model=None, budget=None) -> SchedulerReport:
        """Execute the graph: restore warm nodes, measure dirty ones.

        ``model`` defaults to ``backend.noise_model`` — pass it explicitly
        when planning against a model the backend does not carry.  A
        ``budget`` (any :class:`~repro.backends.budget.ShotBudget`) is
        charged for cold executions by the backend itself and *replayed*
        for warm restores, so the ledger is identical either way.
        """
        if model is None:
            model = backend.noise_model
        keys = self._resolve_keys(model)
        report = SchedulerReport()
        poisoned: set = set()

        for name in self._graph.topological():
            node = self._graph.node(name)
            key = keys[name]

            if any(dep in poisoned for dep in self._graph.deps(name)):
                report.outcomes[name] = SKIPPED
                _count_node(SKIPPED)
                poisoned.add(name)
                continue

            record = self._cache.lookup(key)
            if record is not None:
                if budget is not None:
                    budget.replay(record.shots_spent, record.circuits_executed)
                report.outcomes[name] = RESTORED
                _count_node(RESTORED)
                report.states[name] = record.state
                report.replayed_shots += record.shots_spent
                report.replayed_circuits += record.circuits_executed
                continue

            if node.run is None:
                raise CalGraphError(
                    f"node {name!r} has no executor (opaque graphs can be "
                    f"planned and rendered, not run)"
                )

            digest = node_digest(key)
            try:
                if node.kind == "measure":
                    # Reseed from the node key so the measured state is a
                    # pure function of the key — reuse is then provably
                    # bit-identical to re-measurement.
                    backend.reseed(stable_rng("calgraph", digest))
                    payload, shots_spent, circuits = node.run(
                        backend, self._shots, budget
                    )
                else:
                    dep_payloads = {
                        dep: report.states[dep].payload
                        for dep in self._graph.deps(name)
                    }
                    payload = node.run(dep_payloads)
                    shots_spent, circuits = 0, 0
            except Exception as exc:
                if self._on_failure == "abort":
                    raise
                report.outcomes[name] = FAILED
                _count_node(FAILED)
                report.errors[name] = f"{type(exc).__name__}: {exc}"
                poisoned.add(name)
                continue

            state = CalNodeState(
                name=name,
                kind=node.kind,
                qubits=node.qubits,
                payload=payload,
                fingerprint=key["key"]["noise"],
            )
            self._cache.store(key, state, shots_spent, circuits)
            report.outcomes[name] = EXECUTED
            _count_node(EXECUTED)
            report.states[name] = state
            report.fresh_shots += shots_spent
            report.fresh_circuits += circuits

        return report
