"""Calibration DAG subsystem: incremental, drift-driven recalibration.

Calibration steps (per-qubit readout matrices, CMC edge patches, CMC-ERR
pair profiles and their derived error map) are nodes in a
:class:`~repro.calgraph.graph.CalibrationDAG`, keyed into the artifact
store by ``(device, method, node, local-noise-fingerprint,
upstream-digests)`` and executed topologically by the
:class:`~repro.calgraph.scheduler.CalibrationScheduler`.  When a noise
model drifts on k qubits/edges, exactly the k affected measurement nodes
re-key and re-execute; every clean node restores from the store — partial
reuse that scales with drift locality, not device size.
"""

from repro.calgraph.cache import CalibrationGraphCache, node_digest, node_key
from repro.calgraph.drift import (
    array_digest,
    dirty_closure,
    dirty_nodes,
    fingerprint_table,
    node_fingerprint,
)
from repro.calgraph.graph import (
    CalGraphError,
    CalibrationDAG,
    CalNode,
    CyclicGraphError,
    UnknownNodeError,
)
from repro.calgraph.plans import (
    GRAPH_METHODS,
    assemble_calibration_state,
    build_calibration_graph,
    decompose_calibration_state,
)
from repro.calgraph.scheduler import CalibrationScheduler, NodePlan, SchedulerReport
from repro.calgraph.state import CalNodeState

__all__ = [
    "CalGraphError",
    "CyclicGraphError",
    "UnknownNodeError",
    "CalNode",
    "CalNodeState",
    "CalibrationDAG",
    "CalibrationGraphCache",
    "CalibrationScheduler",
    "NodePlan",
    "SchedulerReport",
    "GRAPH_METHODS",
    "array_digest",
    "assemble_calibration_state",
    "build_calibration_graph",
    "decompose_calibration_state",
    "dirty_closure",
    "dirty_nodes",
    "fingerprint_table",
    "node_digest",
    "node_fingerprint",
    "node_key",
]
