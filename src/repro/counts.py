"""Measurement outcome histograms.

:class:`Counts` is the universal currency between the simulator, the
backends, and every mitigation method: a histogram of measurement outcomes
over a declared set of measured qubits.  Outcomes are stored by *integer*
index (little-endian over the measured-qubit list, see
:mod:`repro.utils.bitstrings`) with bitstring rendering at the edges.

Mitigation methods manipulate the *distribution* view (`to_probabilities`,
`to_sparse`), which may carry quasi-probabilities mid-pipeline; `Counts`
itself always holds non-negative weights (possibly fractional after
averaging, as SIM/AIM produce).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.bitstrings import (
    bitstring_to_int,
    extract_bits,
    int_to_bitstring,
)

__all__ = ["Counts", "SparseDistribution"]


class SparseDistribution:
    """A sparse (quasi-)probability vector over ``2**num_bits`` outcomes.

    Stored as parallel arrays ``indices`` (unique, sorted, int64) and
    ``values`` (float64).  This is the object the CMC sparse-application
    kernel transforms; values may be temporarily negative between inversion
    and the final projection onto the simplex.
    """

    __slots__ = ("indices", "values", "num_bits")

    def __init__(self, indices: np.ndarray, values: np.ndarray, num_bits: int) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1 or indices.size != values.size:
            raise ValueError("indices and values must be parallel 1-D arrays")
        if num_bits < 0 or num_bits > 62:
            raise ValueError(f"num_bits out of range: {num_bits}")
        if indices.size:
            if indices.min() < 0 or indices.max() >= (1 << num_bits):
                raise ValueError("outcome index out of range")
            order = np.argsort(indices, kind="stable")
            indices = indices[order]
            values = values[order]
            # merge duplicates
            uniq, start = np.unique(indices, return_index=True)
            if uniq.size != indices.size:
                sums = np.add.reduceat(values, start)
                indices, values = uniq, sums
        self.indices = indices
        self.values = values
        self.num_bits = int(num_bits)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def total(self) -> float:
        """Sum of all (quasi-)weights."""
        return float(self.values.sum())

    def to_dense(self) -> np.ndarray:
        """Dense vector of length ``2**num_bits`` (small registers only)."""
        if self.num_bits > 26:
            raise ValueError(
                f"refusing to densify a {self.num_bits}-bit distribution"
            )
        dense = np.zeros(1 << self.num_bits)
        dense[self.indices] = self.values
        return dense

    @classmethod
    def from_dense(cls, vector: np.ndarray, tol: float = 0.0) -> "SparseDistribution":
        v = np.asarray(vector, dtype=float)
        n_bits = int(round(np.log2(v.size)))
        if 1 << n_bits != v.size:
            raise ValueError(f"dense length {v.size} is not a power of two")
        keep = np.flatnonzero(np.abs(v) > tol)
        return cls(keep, v[keep], n_bits)

    def prune(self, tol: float) -> "SparseDistribution":
        """Drop entries with |value| <= tol (the paper's periodic culling)."""
        keep = np.abs(self.values) > tol
        return SparseDistribution(self.indices[keep], self.values[keep], self.num_bits)

    def clip_normalized(self) -> "SparseDistribution":
        """Project onto the probability simplex (clip negatives, renorm)."""
        vals = np.clip(self.values, 0.0, None)
        total = vals.sum()
        if total <= 0:
            raise ValueError("distribution has no positive mass")
        keep = vals > 0
        return SparseDistribution(self.indices[keep], vals[keep] / total, self.num_bits)

    def __repr__(self) -> str:
        return f"SparseDistribution(num_bits={self.num_bits}, nnz={self.nnz}, total={self.total():.6g})"


class Counts(Mapping[int, float]):
    """Histogram of measurement outcomes over ``measured_qubits``.

    Keys are outcome integers local to the measured-qubit list: bit ``k`` of
    a key is the outcome of ``measured_qubits[k]``.  Values are non-negative
    weights (integer shots, or fractional after averaging).
    """

    def __init__(
        self,
        data: Mapping[int, float] | Iterable[Tuple[int, float]],
        measured_qubits: Sequence[int],
        num_qubits: Optional[int] = None,
    ) -> None:
        self._measured = tuple(int(q) for q in measured_qubits)
        if len(set(self._measured)) != len(self._measured):
            raise ValueError("measured_qubits must be distinct")
        self._num_qubits = (
            int(num_qubits) if num_qubits is not None else (max(self._measured, default=-1) + 1)
        )
        items = data.items() if isinstance(data, Mapping) else data
        store: Dict[int, float] = {}
        limit = 1 << len(self._measured)
        for key, val in items:
            key = int(key)
            val = float(val)
            if key < 0 or key >= limit:
                raise ValueError(
                    f"outcome {key} out of range for {len(self._measured)} measured qubits"
                )
            if val < 0:
                raise ValueError(f"negative count {val} for outcome {key}")
            if val:
                store[key] = store.get(key, 0.0) + val
        self._data = store

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bitstrings(
        cls,
        data: Mapping[str, float],
        measured_qubits: Optional[Sequence[int]] = None,
        num_qubits: Optional[int] = None,
    ) -> "Counts":
        """Build from a ``{'0110': shots}`` mapping (qiskit-style keys)."""
        if not data:
            raise ValueError("empty counts")
        width = len(next(iter(data)))
        if any(len(k) != width for k in data):
            raise ValueError("inconsistent bitstring widths")
        measured = tuple(range(width)) if measured_qubits is None else tuple(measured_qubits)
        if len(measured) != width:
            raise ValueError("bitstring width does not match measured_qubits")
        return cls(
            {bitstring_to_int(k): v for k, v in data.items()}, measured, num_qubits
        )

    @classmethod
    def from_samples(
        cls,
        outcomes: np.ndarray,
        measured_qubits: Sequence[int],
        num_qubits: Optional[int] = None,
    ) -> "Counts":
        """Build from an array of per-shot outcome integers."""
        values, freq = np.unique(np.asarray(outcomes, dtype=np.int64), return_counts=True)
        return cls(zip(values.tolist(), freq.tolist()), measured_qubits, num_qubits)

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, key: int) -> float:
        return self._data[key]

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: int, default: float = 0.0) -> float:
        return self._data.get(key, default)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def measured_qubits(self) -> Tuple[int, ...]:
        return self._measured

    @property
    def num_measured(self) -> int:
        return len(self._measured)

    @property
    def num_qubits(self) -> int:
        """Size of the full register the measured qubits live on."""
        return self._num_qubits

    @property
    def shots(self) -> float:
        """Total weight (exact shot count for raw histograms)."""
        return float(sum(self._data.values()))

    def by_bitstring(self) -> Dict[str, float]:
        """Render keys as bitstrings (qubit ``measured_qubits[-1]`` first)."""
        width = self.num_measured
        return {int_to_bitstring(k, width): v for k, v in sorted(self._data.items())}

    def most_frequent(self) -> int:
        """The modal outcome (ties broken toward the smaller index)."""
        if not self._data:
            raise ValueError("empty counts")
        return min(self._data, key=lambda k: (-self._data[k], k))

    # ------------------------------------------------------------------
    # Distribution views
    # ------------------------------------------------------------------
    def to_probabilities(self) -> Dict[int, float]:
        """Normalised dict view."""
        total = self.shots
        if total <= 0:
            raise ValueError("cannot normalise empty counts")
        return {k: v / total for k, v in self._data.items()}

    def to_sparse(self, normalized: bool = True) -> SparseDistribution:
        """Sparse vector over the measured-qubit index space."""
        idx = np.fromiter(self._data.keys(), dtype=np.int64, count=len(self._data))
        val = np.fromiter(self._data.values(), dtype=np.float64, count=len(self._data))
        if normalized:
            total = val.sum()
            if total <= 0:
                raise ValueError("cannot normalise empty counts")
            val = val / total
        return SparseDistribution(idx, val, self.num_measured)

    def to_dense(self, normalized: bool = True) -> np.ndarray:
        """Dense vector over ``2**num_measured`` outcomes."""
        return self.to_sparse(normalized=normalized).to_dense()

    # ------------------------------------------------------------------
    # Transformations used by the mitigation methods
    # ------------------------------------------------------------------
    def marginalize(self, qubits: Sequence[int]) -> "Counts":
        """Marginal counts over a subset of the measured qubits.

        ``qubits`` are *device* qubit labels that must be among
        ``measured_qubits``; this is how JIGSAW forms its sub-tables and how
        calibration traces out spectator qubits.
        """
        positions = []
        for q in qubits:
            try:
                positions.append(self._measured.index(int(q)))
            except ValueError:
                raise ValueError(f"qubit {q} was not measured") from None
        if not self._data:
            return Counts({}, tuple(int(q) for q in qubits), self._num_qubits)
        idx = np.fromiter(self._data.keys(), dtype=np.int64, count=len(self._data))
        val = np.fromiter(self._data.values(), dtype=np.float64, count=len(self._data))
        local = extract_bits(idx, positions)
        uniq, inv = np.unique(local, return_inverse=True)
        sums = np.zeros(uniq.size)
        np.add.at(sums, inv, val)
        return Counts(
            zip(uniq.tolist(), sums.tolist()),
            tuple(int(q) for q in qubits),
            self._num_qubits,
        )

    def xor_relabel(self, mask: int) -> "Counts":
        """XOR every outcome with ``mask`` (the SIM/AIM un-flip step)."""
        limit = 1 << self.num_measured
        if not (0 <= mask < limit):
            raise ValueError(f"mask {mask} out of range")
        return Counts(
            {k ^ mask: v for k, v in self._data.items()},
            self._measured,
            self._num_qubits,
        )

    def scaled(self, factor: float) -> "Counts":
        """Multiply all weights by a non-negative factor."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return Counts(
            {k: v * factor for k, v in self._data.items()},
            self._measured,
            self._num_qubits,
        )

    def merged(self, other: "Counts") -> "Counts":
        """Add two histograms over the same measured qubits."""
        if other.measured_qubits != self._measured:
            raise ValueError("cannot merge counts over different measured qubits")
        data = dict(self._data)
        for k, v in other._data.items():
            data[k] = data.get(k, 0.0) + v
        return Counts(data, self._measured, self._num_qubits)

    @staticmethod
    def average(counts_list: Sequence["Counts"]) -> "Counts":
        """Shot-weighted average of normalised distributions (SIM's combiner).

        Each input is normalised first, then averaged with equal weight, and
        the result is rescaled to the summed shot total so downstream code
        still sees a sensible magnitude.
        """
        if not counts_list:
            raise ValueError("nothing to average")
        measured = counts_list[0].measured_qubits
        total_shots = sum(c.shots for c in counts_list)
        acc: Dict[int, float] = {}
        for c in counts_list:
            if c.measured_qubits != measured:
                raise ValueError("cannot average counts over different measured qubits")
            probs = c.to_probabilities()
            for k, p in probs.items():
                acc[k] = acc.get(k, 0.0) + p / len(counts_list)
        return Counts(
            {k: p * total_shots for k, p in acc.items()},
            measured,
            counts_list[0].num_qubits,
        )

    def __repr__(self) -> str:
        head = dict(list(sorted(self._data.items()))[:4])
        more = "" if len(self._data) <= 4 else f", +{len(self._data) - 4} outcomes"
        return (
            f"Counts(measured={list(self._measured)}, shots={self.shots:g}, "
            f"{head}{more})"
        )
