#!/usr/bin/env python
"""Use the library on a custom device: your own topology and noise model.

Shows the full do-it-yourself path a downstream user would take:

1. define a coupling map by hand;
2. compose a measurement-error channel factor by factor (state-dependent
   readout + an injected correlated pair);
3. inspect Algorithm 1's patch schedule and its circuit-count savings;
4. calibrate, mitigate, and verify against the exact channel inverse.

Run:  python examples/custom_topology_mitigation.py
"""

import numpy as np

from repro import (
    CMCMitigator,
    Circuit,
    CouplingMap,
    MeasurementErrorChannel,
    NoiseModel,
    ReadoutError,
    ShotBudget,
    SimulatedBackend,
    one_norm_distance,
)
from repro.analysis import render_hinton_ascii
from repro.core import build_patch_rounds
from repro.noise import correlated_pair_channel


def main() -> None:
    # 1. A hand-rolled 6-qubit "H" topology.
    cmap = CouplingMap(
        6, [(0, 1), (1, 2), (1, 4), (3, 4), (4, 5)], name="custom-H"
    )
    print(f"topology: {cmap.name}, edges {cmap.edges}")

    # 2. Noise: biased readout everywhere + one strongly correlated pair.
    channel = MeasurementErrorChannel(6)
    for q in range(6):
        channel.add_readout(q, ReadoutError(p01=0.02, p10=0.06))
    channel.add_local((1, 4), correlated_pair_channel(0.10))
    backend = SimulatedBackend(
        cmap, NoiseModel.measurement_only(channel, name="custom"), rng=11
    )
    print("\nexact channel on the correlated pair (1, 4):")
    print(render_hinton_ascii(channel.to_matrix([1, 4])))

    # 3. Algorithm 1's schedule: which edges share calibration circuits.
    schedule = build_patch_rounds(cmap, k=1)
    print(f"\npatch rounds (k=1): {schedule.rounds}")
    print(
        f"{schedule.num_circuits} calibration circuits vs "
        f"{4 * cmap.num_edges} per-edge  "
        f"(speed-up x{schedule.speedup:.1f})"
    )

    # 4. Calibrate + mitigate a W-like benchmark circuit.
    circuit = Circuit(6, name="x-pattern").x(1).x(4).measure_all()
    correct = 0b010010  # qubits 1 and 4 set
    shots = 24000

    mitigator = CMCMitigator(cmap, k=1)
    budget = ShotBudget(shots)
    mitigator.prepare(backend, budget)
    mitigated = mitigator.execute(circuit, backend, budget)

    bare = backend.run(circuit, shots)
    p_bare = bare.to_probabilities().get(correct, 0.0)
    p_cmc = mitigated.to_probabilities().get(correct, 0.0)
    print(f"\nP(correct outcome) bare: {p_bare:.3f}   CMC: {p_cmc:.3f}")

    # 5. Compare against the unreachable ideal: exact channel inversion.
    exact = channel.to_matrix()
    observed = backend.exact_distribution(circuit)
    perfect = np.linalg.solve(exact, observed)
    perfect = np.clip(perfect, 0, None)
    perfect /= perfect.sum()
    print(f"P(correct) with exact channel inverse: {perfect[correct]:.3f}")
    print(
        f"CMC recovered "
        f"{(p_cmc - p_bare) / max(perfect[correct] - p_bare, 1e-9):.0%} "
        "of the exactly-recoverable error"
    )


if __name__ == "__main__":
    main()
