#!/usr/bin/env python
"""Compare all eight mitigation methods across device sizes (Figs. 13-15).

Runs the full method suite — Bare, Full, Linear, AIM, SIM, JIGSAW, CMC,
CMC-ERR — on a family of simulated grid devices at increasing qubit counts,
each method restricted to the same 16000-shot budget, and prints the
error-rate series plus each method's reduction vs Bare.

Run:  python examples/ghz_mitigation_sweep.py [architecture]
      architecture: grid (default) | hexagonal | octagonal | fully_connected
"""

import sys

from repro.experiments import format_series, ghz_architecture_sweep


def main() -> None:
    architecture = sys.argv[1] if len(sys.argv) > 1 else "grid"
    qubit_counts = [4, 6, 8, 10, 12]
    print(
        f"GHZ benchmark on {architecture} devices, 16000 shots/method, "
        "1-norm distance to ideal (lower is better)\n"
    )
    sweep = ghz_architecture_sweep(
        architecture,
        qubit_counts,
        shots=16000,
        trials=2,
        seed=0,
        gate_noise=False,
        full_max_qubits=10,
    )
    print(
        format_series(
            "n",
            sweep.qubit_counts,
            {m: sweep.medians(m) for m in sweep.methods()},
        )
    )
    print("\nerror reduction vs Bare (positive = better):")
    reductions = {
        m: [None if r is None else round(r, 2) for r in sweep.reduction_vs_bare(m)]
        for m in sweep.methods()
        if m != "Bare"
    }
    for method, reds in reductions.items():
        cells = ", ".join("N/A" if r is None else f"{r:+.0%}" for r in reds)
        print(f"  {method:8s} {cells}")
    print(
        "\nExpected shape: Full/Linear best while feasible then N/A; "
        "AIM/SIM track Bare; CMC & CMC-ERR best non-exponential; "
        "JIGSAW in between (and ahead of CMC on fully_connected)."
    )


if __name__ == "__main__":
    main()
