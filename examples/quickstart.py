#!/usr/bin/env python
"""Quickstart: mitigate measurement errors on a simulated device with CMC.

Builds a 9-qubit grid device with realistic noise (biased readout +
coupling-aligned correlated errors), prepares a GHZ state, and compares the
raw and CMC-mitigated output distributions under the paper's equal-shot
budget rule.

Run:  python examples/quickstart.py
"""

from repro import (
    CMCMitigator,
    ShotBudget,
    architecture_backend,
    ghz_bfs,
    one_norm_distance,
)
from repro.experiments.ghz_sweep import ghz_ideal_distribution


def main() -> None:
    # 1. A simulated 9-qubit grid device (Google Sycamore-style topology)
    #    with the paper's noise recipe: 2-8% biased readout per qubit plus
    #    correlated readout errors on some coupling-map edges.
    backend = architecture_backend(
        "grid", 9, correlation_placement="coupling", rng=42
    )
    print(f"device: {backend.name}")
    print(f"coupling map edges: {backend.coupling_map.edges}")
    print(f"correlated error pairs: {backend.noise_model.correlated_edges}")

    # 2. The benchmark circuit: GHZ by breadth-first CNOT fan-out, which
    #    needs no routing on the device topology.
    circuit = ghz_bfs(backend.coupling_map)
    print(f"\ncircuit: {circuit.name}, depth {circuit.depth()}, "
          f"{circuit.count_gates('cx')} CNOTs")

    # 3. Equal shot budget: CMC must pay for its calibration circuits out
    #    of the same 16000 shots a bare run would get.
    total_shots = 16000
    ideal = ghz_ideal_distribution(9)

    bare = backend.run(circuit, total_shots)
    print(f"\nbare      1-norm error: {one_norm_distance(bare, ideal):.3f}")

    mitigator = CMCMitigator(backend.coupling_map, k=1)
    budget = ShotBudget(total_shots)
    mitigator.prepare(backend, budget)  # Algorithm-1 patch calibration
    print(
        f"CMC spent {budget.by_tag()['calibration']} shots on "
        f"{budget.circuits_executed} calibration circuits "
        f"({mitigator.schedule.num_rounds} patch rounds for "
        f"{backend.coupling_map.num_edges} edges)"
    )
    mitigated = mitigator.execute(circuit, backend, budget)
    print(f"CMC       1-norm error: {one_norm_distance(mitigated, ideal):.3f}")

    # 4. The calibration is reusable: mitigate another circuit's counts
    #    without spending any further calibration shots (§VII-A).
    second = ghz_bfs(backend.coupling_map, num_qubits=4)
    raw = backend.run(second, 4000)
    fixed = mitigator.mitigate(raw)
    ideal4 = ghz_ideal_distribution(4)
    print(
        f"\nreuse on GHZ-4: bare {one_norm_distance(raw, ideal4):.3f} -> "
        f"CMC {one_norm_distance(fixed, ideal4):.3f}"
    )


if __name__ == "__main__":
    main()
