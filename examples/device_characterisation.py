#!/usr/bin/env python
"""Characterise a device's correlated measurement errors (paper Fig. 1 + §IV-D).

Reproduces the Fig. 1 workflow on the IBMQ Nairobi stand-in, whose
correlated errors are local but NOT aligned with the coupling map:

1. measure every pairwise correlation weight ``‖C_i ⊗ C_j − C_ij‖_F``
   averaged over three drifted calibration cycles;
2. build the ERR error coupling map (Algorithm 2) from the weights;
3. show that CMC-ERR (calibrating the error map) beats plain CMC
   (calibrating the coupling map) on this device — the Table II story.

Run:  python examples/device_characterisation.py
"""

from repro import CMCERRMitigator, CMCMitigator, ShotBudget, ghz_bfs, one_norm_distance
from repro.backends import device_profile_backend
from repro.core import build_error_coupling_map
from repro.experiments import device_correlation_map
from repro.experiments.ghz_sweep import ghz_ideal_distribution


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Fig. 1: pairwise correlation map over three drifted weeks.
    # ------------------------------------------------------------------
    result = device_correlation_map("nairobi", weeks=3, seed=7)
    print(f"device: {result.device} ({result.coupling_map.num_qubits} qubits)")
    print(f"coupling map: {result.coupling_map.edges}")
    print(f"injected correlated pairs (ground truth): {result.injected_edges}")
    print("\nheaviest measured correlation weights:")
    for edge, weight in result.heaviest(6):
        tag = "ON  coupling map" if edge in result.coupling_map else "OFF coupling map"
        print(f"  {edge}: {weight:.4f}   [{tag}]")
    print(f"\ncoupling-map alignment of correlation weight: {result.alignment():.2f}"
          "  (low => use CMC-ERR)")

    # ------------------------------------------------------------------
    # 2. Algorithm 2: the error coupling map from the measured weights.
    # ------------------------------------------------------------------
    error_map = build_error_coupling_map(
        result.coupling_map.num_qubits, result.weights
    )
    print(f"\nERR error coupling map edges: {error_map.edges}")
    recovered = set(error_map.edges) & set(result.injected_edges)
    print(f"recovered {len(recovered)}/{len(result.injected_edges)} injected pairs")

    # ------------------------------------------------------------------
    # 3. CMC vs CMC-ERR on the device's GHZ benchmark (32000 shots each).
    # ------------------------------------------------------------------
    backend = device_profile_backend("nairobi", rng=7, gate_noise=False)
    circuit = ghz_bfs(backend.coupling_map)
    ideal = ghz_ideal_distribution(backend.num_qubits)
    shots = 32000

    bare = backend.run(circuit, shots)
    print(f"\nbare    GHZ-7 error: {one_norm_distance(bare, ideal):.3f}")

    cmc = CMCMitigator(backend.coupling_map)
    budget = ShotBudget(shots)
    cmc.prepare(backend, budget)
    out = cmc.execute(circuit, backend, budget)
    print(f"CMC     GHZ-7 error: {one_norm_distance(out, ideal):.3f} "
          "(calibrates the coupling map - misses off-map correlations)")

    err = CMCERRMitigator(backend.coupling_map, locality=3)
    budget = ShotBudget(shots)
    err.prepare(backend, budget)
    out = err.execute(circuit, backend, budget)
    print(f"CMC-ERR GHZ-7 error: {one_norm_distance(out, ideal):.3f} "
          "(calibrates the profiled error map)")


if __name__ == "__main__":
    main()
