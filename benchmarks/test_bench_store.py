"""Persistent-store benchmark: warm grid rerun vs cold run (ISSUE 3).

The store's operational claim, measured: a Table-II-shaped grid run
against a warm :class:`~repro.store.artifacts.ArtifactStore` — one that a
previous *process* already populated — performs **zero** calibration
executions (every calibration restores from disk) and finishes measurably
faster than the cold run, while reporting exactly the same method errors.

Asserted invariants:

* warm run: ``cache_misses == 0`` (stats are hits only) and every
  calibration the cold run measured is a hit;
* warm records are bit-identical to cold records (the equal-budget replay
  discipline survives the disk tier);
* warm wall-clock beats cold by the floor below (strict under
  ``run_bench.py``; relaxed in the tier-1 suite — perf never gates
  merges on noisy shared runners).

A machine-readable timing blob goes to
``benchmarks/results/store_warm_rerun.bench.json``; ``run_bench.py``
folds it into ``BENCH_store.json`` (the record's ``artifact`` field
routes it to its own artefact file).
"""

from __future__ import annotations

import json
import os
import time

from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep
from repro.store import ArtifactStore

from .conftest import RESULTS_DIR, run_once

SHOTS = 8000
TRIALS = 2
SEED = 23
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
REQUIRED_SPEEDUP = 1.5
RELAXED_SPEEDUP = 1.0  # catastrophic-regression floor: warm never slower


def _grid_spec() -> SweepSpec:
    # Two devices x two GHZ fan-outs x two trials, matrix methods only —
    # the calibration-dominated shape where persistence should pay.
    return SweepSpec(
        backends=(
            BackendSpec(kind="device", name="quito", gate_noise=False),
            BackendSpec(kind="device", name="lima", gate_noise=False),
        ),
        circuits=(CircuitSpec(root=0), CircuitSpec(root=1)),
        shots=(SHOTS,),
        methods=("Full", "Linear", "CMC", "CMC-ERR"),
        trials=TRIALS,
        seed=SEED,
        full_max_qubits=5,
    )


def record_keys(result):
    return [
        (r.backend_label, r.trial, r.shots, r.circuit_label, r.method, r.error)
        for r in result.records
    ]


def test_bench_store_warm_rerun(benchmark, emit, tmp_path):
    spec = _grid_spec()
    store = ArtifactStore(tmp_path / "store")

    t0 = time.perf_counter()
    cold = run_sweep(spec, store=store)
    t_cold = time.perf_counter() - t0
    assert cold.cache_misses > 0

    # The warm run is what the benchmark times: a fresh engine invocation
    # (new in-memory caches, as a new process would have) against the
    # store the cold run populated.
    warm = run_once(benchmark, lambda: run_sweep(spec, store=store))
    t_warm = float("inf")
    for _ in range(2):  # best-of to damp shared-runner jitter
        t0 = time.perf_counter()
        warm2 = run_sweep(spec, store=store)
        t_warm = min(t_warm, time.perf_counter() - t0)
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")

    # --- acceptance: all calibrations restore from disk, same errors -----
    for result in (warm, warm2):
        assert result.cache_misses == 0, "warm rerun must execute no calibration"
        assert result.cache_hits == cold.cache_hits + cold.cache_misses
        assert record_keys(result) == record_keys(cold)

    floor = REQUIRED_SPEEDUP if STRICT else RELAXED_SPEEDUP
    assert speedup >= floor, (
        f"warm store rerun only {speedup:.2f}x vs cold (floor {floor}x)"
    )

    blob = {
        "name": "store_warm_rerun",
        "artifact": "BENCH_store.json",
        "workload": {
            "devices": ["quito", "lima"],
            "circuits": 2,
            "trials": TRIALS,
            "shots": SHOTS,
            "methods": ["Full", "Linear", "CMC", "CMC-ERR"],
        },
        "cold_s": t_cold,
        "warm_s": t_warm,
        "speedup": speedup,
        "strict": STRICT,
        "cold_cache": {"hits": cold.cache_hits, "misses": cold.cache_misses},
        "warm_cache": {"hits": warm.cache_hits, "misses": warm.cache_misses},
        "calibration_circuits_avoided": warm.saved_circuits,
        "calibration_shots_avoided": warm.saved_shots,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "store_warm_rerun.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "store_warm_rerun",
        (
            f"cold grid run:  {t_cold:.2f}s "
            f"({cold.cache_misses} calibrations measured)\n"
            f"warm grid run:  {t_warm:.2f}s "
            f"(0 calibrations measured, {warm.cache_hits} store/memory hits)\n"
            f"speedup:        {speedup:.2f}x  "
            f"({warm.saved_circuits} calibration circuit executions avoided)"
        ),
    )
