"""Fig. 1 — pairwise measurement-error correlation maps on IBM devices.

For each device profile, all-pairs single- and two-qubit calibrations are
measured on three drifted weekly snapshots; the edge weight is the
Frobenius norm ``‖C_i ⊗ C_j − C_ij‖_F`` averaged over weeks.  Expected
shape: Quito/Lima/Belem concentrate their correlation weight ON the
coupling map; Manila/Nairobi/Oslo place substantial weight OFF it — the
structure that decides CMC vs CMC-ERR per device (§VI-C).
"""

import pytest

from repro.experiments import device_correlation_map
from repro.experiments.report import format_table

from .conftest import run_once

DEVICES = ["quito", "lima", "belem", "manila", "nairobi", "oslo"]

_CACHE = {}


def all_maps():
    if not _CACHE:
        for i, device in enumerate(DEVICES):
            _CACHE[device] = device_correlation_map(
                device, weeks=3, shots_per_circuit=4000, seed=100 + i
            )
    return _CACHE


@pytest.fixture(scope="module")
def maps():
    return all_maps()


def test_bench_fig01_correlation_maps(benchmark, emit):
    results = run_once(benchmark, all_maps)
    rows = {}
    for device, res in results.items():
        top = ", ".join(f"{e}:{w:.3f}" for e, w in res.heaviest(3))
        rows[device] = {
            "alignment": res.alignment(),
            "weeks": res.weeks,
            "heaviest pairs": top,
        }
    emit(
        "fig01_correlation",
        format_table(rows, ["alignment", "weeks", "heaviest pairs"], row_header="device"),
    )
    # Aligned devices should show higher coupling-map alignment than the
    # off-map devices.
    aligned = min(results[d].alignment() for d in ("quito", "lima", "belem"))
    off = max(results[d].alignment() for d in ("manila", "nairobi", "oslo"))
    assert aligned > off


class TestFig01Shape:
    def test_injected_pairs_are_heaviest(self, maps):
        """The characterisation recovers the pairs the profile injected."""
        for device, res in maps.items():
            injected = set(res.injected_edges)
            if not injected:
                continue
            top = {e for e, _w in res.heaviest(len(injected) + 1)}
            assert len(top & injected) >= max(1, len(injected) - 1), device

    def test_weights_persist_across_weeks(self, maps):
        """Correlation structure persists between calibration cycles: the
        averaged weight of injected pairs stands far above the background
        median."""
        import numpy as np

        for device, res in maps.items():
            if not res.injected_edges:
                continue
            background = float(np.median(list(res.weights.values())))
            for e in res.injected_edges:
                assert res.weights[e] > 2 * background, (device, e)

    def test_off_map_weight_dominates_on_nairobi(self, maps):
        res = maps["nairobi"]
        assert res.off_map_weight() > 0
        assert res.alignment() < 0.5

    def test_on_map_weight_dominates_on_quito(self, maps):
        assert maps["quito"].alignment() > 0.5
