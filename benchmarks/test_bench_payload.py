"""Payload-encoding benchmark: sparse/compressed artifacts (ISSUE 10).

The codec-2 claim, measured on the issue's reference workload — a
fully-connected 16-qubit device calibrated for CMC-ERR (120 pair
matrices plus the marginal singles):

* **bytes at rest, per backend** — the same sweep persisted through a
  dense (pre-1.8) store and a compact one, on the loose-file ``dir``
  backend and the packed ``s3`` backend.  The packed artifact must come
  out ≥ :data:`REQUIRED_SHRINK`× smaller (strict under ``run_bench.py``;
  a catastrophic-regression floor in the tier-1 suite).  The ``dir`` win
  is structurally smaller — loose ``.json`` records stay uncompressed so
  pre-1.8 tooling can still open them — and is reported, not gated.
* **warm-sweep transfer volume** — bytes served by the fake object
  client while a *fresh process* re-runs the sweep warm.  Compact
  encoding must move fewer bytes for the identical zero-miss restore.
* **bit-identity** — cold and warm records are identical between the two
  encodings, cell for cell; the encoding may only change bytes at rest.

The machine-readable blob goes to
``benchmarks/results/payload_encoding.bench.json``; ``run_bench.py``
folds it into ``BENCH_payload.json``.
"""

from __future__ import annotations

import json
import os

from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep
from repro.store import ArtifactStore, FakeObjectClient

from .conftest import RESULTS_DIR, run_once

SHOTS = 2000
SEED = 7
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
REQUIRED_SHRINK = 5.0  # packed fc16 CMC-ERR artifact, dense/compact
RELAXED_SHRINK = 3.0  # catastrophic-regression floor for tier-1 runs


def _fc16_spec() -> SweepSpec:
    # The issue's reference payload: all 120 qubit pairs of a
    # fully-connected 16-qubit device carry a CMC-ERR patch calibration.
    return SweepSpec(
        backends=(
            BackendSpec(
                kind="architecture",
                name="fully_connected",
                qubits=16,
                gate_noise=False,
            ),
        ),
        circuits=(CircuitSpec(root=0),),
        shots=(SHOTS,),
        methods=("CMC-ERR",),
        trials=1,
        seed=SEED,
        err_locality=2,
    )


class _MeteredClient(FakeObjectClient):
    """Fake object client that counts every byte it serves."""

    def __init__(self):
        super().__init__()
        self.bytes_served = 0

    def get_object(self, bucket, key):
        data = super().get_object(bucket, key)
        if data is not None:
            self.bytes_served += len(data)
        return data

    def get_object_range(self, bucket, key, start, length):
        data = super().get_object_range(bucket, key, start, length)
        if data is not None:
            self.bytes_served += len(data)
        return data


def record_keys(result):
    return [
        (r.backend_label, r.trial, r.shots, r.circuit_label, r.method,
         r.error, r.shots_spent, r.circuits_executed)
        for r in result.records
    ]


def _stored_bytes(store: ArtifactStore):
    infos = list(store.entries())
    return sum(i.size_bytes for i in infos), sum(i.logical_bytes for i in infos)


def test_bench_payload_encoding(benchmark, emit, tmp_path):
    spec = _fc16_spec()

    # --- bytes at rest: dense vs compact, per backend -------------------
    sizes = {}
    reference = None
    for scheme in ("dir", "s3"):
        sizes[scheme] = {}
        for mode, compact in (("dense", False), ("compact", True)):
            if scheme == "dir":
                store = ArtifactStore(tmp_path / f"{scheme}-{mode}", compact=compact)
            else:
                store = ArtifactStore(
                    "s3://bench/payload", client=_MeteredClient(), compact=compact
                )
            cold = run_sweep(spec, store=store)
            keys = record_keys(cold)
            if reference is None:
                reference = keys
            # the encoding may only change bytes at rest, never a record
            assert keys == reference, (scheme, mode)
            encoded, logical = _stored_bytes(store)
            sizes[scheme][mode] = {
                "encoded_bytes": encoded,
                "logical_bytes": logical,
                "store": store,
            }

    pack_shrink = (
        sizes["s3"]["dense"]["encoded_bytes"]
        / sizes["s3"]["compact"]["encoded_bytes"]
    )
    dir_shrink = (
        sizes["dir"]["dense"]["encoded_bytes"]
        / sizes["dir"]["compact"]["encoded_bytes"]
    )
    floor = REQUIRED_SHRINK if STRICT else RELAXED_SHRINK
    assert pack_shrink >= floor, (
        f"packed fc16 CMC-ERR artifact only {pack_shrink:.2f}x smaller "
        f"compact vs dense (floor {floor}x)"
    )

    # --- warm transfer volume over the object client --------------------
    transfer = {}
    warm_keys = {}
    for mode in ("dense", "compact"):
        store = sizes["s3"][mode]["store"]
        client = store.backend.client
        client.bytes_served = 0
        if mode == "compact":
            warm = run_once(benchmark, lambda: run_sweep(spec, store=store))
        else:
            warm = run_sweep(spec, store=store)
        assert warm.cache_misses == 0, f"warm {mode} rerun must restore from disk"
        transfer[mode] = client.bytes_served
        warm_keys[mode] = record_keys(warm)
    assert warm_keys["dense"] == warm_keys["compact"] == reference
    assert 0 < transfer["compact"] < transfer["dense"]
    transfer_shrink = transfer["dense"] / transfer["compact"]

    # --- report ---------------------------------------------------------
    blob = {
        "name": "payload_encoding",
        "artifact": "BENCH_payload.json",
        "workload": {
            "architecture": "fully_connected",
            "qubits": 16,
            "method": "CMC-ERR",
            "err_locality": 2,
            "shots": SHOTS,
            "pair_calibrations": 120,
        },
        "bytes_at_rest": {
            scheme: {
                mode: {
                    "encoded_bytes": entry["encoded_bytes"],
                    "logical_bytes": entry["logical_bytes"],
                }
                for mode, entry in modes.items()
            }
            for scheme, modes in sizes.items()
        },
        "shrink": {"packed": pack_shrink, "dir": dir_shrink},
        "warm_transfer_bytes": transfer,
        "warm_transfer_shrink": transfer_shrink,
        "records_bit_identical": True,
        "strict": STRICT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "payload_encoding.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "payload_encoding",
        (
            f"fc16 CMC-ERR bytes at rest (dense -> compact):\n"
            f"  s3 packed:  {sizes['s3']['dense']['encoded_bytes']:6d} -> "
            f"{sizes['s3']['compact']['encoded_bytes']:6d}  ({pack_shrink:.2f}x)\n"
            f"  dir loose:  {sizes['dir']['dense']['encoded_bytes']:6d} -> "
            f"{sizes['dir']['compact']['encoded_bytes']:6d}  ({dir_shrink:.2f}x)\n"
            f"warm-sweep transfer: {transfer['dense']} -> {transfer['compact']} "
            f"bytes ({transfer_shrink:.2f}x); records bit-identical either way"
        ),
    )
