"""Table II — GHZ benchmarks on IBM device stand-ins.

Manila/Lima/Quito (5 qubits) and Nairobi (7 qubits), 32000 shots per method
covering calibration + execution, 1-norm distance to the ideal GHZ state
with asymmetric quantile error bars.  Expected shape (§VI-C):

* exponential methods best on the 5-qubit devices, N/A at 7 qubits;
* CMC wins among non-exponential methods on coupling-aligned profiles
  (Quito/Lima);
* CMC-ERR wins on off-map profiles (Nairobi — the paper's 41% reduction);
* AIM/SIM within noise of Bare everywhere.
"""

import numpy as np
import pytest

from repro.experiments import device_ghz_table
from repro.experiments.report import format_table
from repro.experiments.runner import METHOD_ORDER

from .conftest import run_once

_CACHE = {}


def full_table():
    if "table" not in _CACHE:
        _CACHE["table"] = device_ghz_table(
            ["manila", "lima", "quito", "nairobi"],
            shots=32000,
            trials=3,
            seed=201,
            full_max_qubits=5,
            gate_noise=True,
        )
    return _CACHE["table"]


@pytest.fixture(scope="module")
def table():
    return full_table()


def test_bench_table2_device_ghz(benchmark, emit):
    result = run_once(benchmark, full_table)
    rows = {}
    for method in [m for m in METHOD_ORDER if m in result.methods()]:
        rows[method] = {
            device: result.summary(device, method) for device in result.devices
        }
    emit(
        "table2_devices",
        format_table(rows, result.devices, row_header="method", precision=2),
    )
    # N/A regime: 7-qubit Nairobi exceeds the exponential feasibility cap.
    assert result.summary("nairobi", "Full") is None
    assert result.summary("nairobi", "Linear") is None
    # CMC-ERR is the winner on the off-map-correlated Nairobi profile.
    assert result.best_non_exponential("nairobi") == "CMC-ERR"


class TestTable2Shape:
    def test_exponential_best_on_five_qubit_devices(self, table):
        for device in ("manila", "lima", "quito"):
            full = table.summary(device, "Full")
            bare = table.summary(device, "Bare")
            assert full is not None
            assert full.median < bare.median

    def test_cmc_wins_on_aligned_profiles(self, table):
        """Quito/Lima have coupling-aligned correlations -> plain CMC is
        the best (or tied best) non-exponential method."""
        wins = sum(
            1
            for device in ("lima", "quito")
            if table.best_non_exponential(device) in ("CMC", "CMC-ERR")
        )
        assert wins == 2
        # And CMC specifically beats JIGSAW there.
        for device in ("lima", "quito"):
            cmc = table.summary(device, "CMC")
            jig = table.summary(device, "JIGSAW")
            assert cmc.median < jig.median + 0.05, device

    def test_err_reduction_on_nairobi(self, table):
        """The headline: CMC-ERR cuts Nairobi's error substantially
        (paper: 41% vs bare)."""
        bare = table.summary("nairobi", "Bare").median
        err = table.summary("nairobi", "CMC-ERR").median
        assert (bare - err) / bare > 0.25

    def test_averaging_within_noise_of_bare(self, table):
        for device in table.devices:
            bare = table.summary(device, "Bare").median
            for method in ("AIM", "SIM"):
                m = table.summary(device, method).median
                assert abs(m - bare) < 0.12, (device, method)

    def test_summaries_have_spread(self, table):
        s = table.summary("manila", "Bare")
        assert s.num_samples == 3
        assert s.plus >= 0 and s.minus >= 0
