"""Pipeline engine benchmark: Table-II-style device sweep, three ways.

Runs the full 8-method suite on the four Table II device profiles,
repeated trials, 32000 shots per method per trial, under:

1. **naive trial-by-trial serial execution** (the pre-pipeline idiom):
   every trial draws and rebuilds its device backend and cold-calibrates
   every method from scratch;
2. the **sweep engine, serial**: one task per device pins the simulated
   device (the paper's fixed-device §VII-A reuse scenario) and shares
   calibration across trials via the CalibrationCache;
3. the **sweep engine, 4 workers**: same spec over a process pool.

Asserted invariants (the ISSUE's acceptance criteria):

* engine results are bit-identical for 1 and 4 workers;
* the 4-worker engine completes the sweep measurably faster than the
  naive trial-by-trial loop (on a single core the win comes from
  calibration + simulator-state reuse; extra cores stack on top);
* cache hits occur and save real device work (circuits / shots).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.profiles import device_profile_backend
from repro.circuits.library import ghz_bfs
from repro.experiments.report import format_table
from repro.experiments.runner import default_method_suite, run_suite_once
from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep
from repro.utils.rng import stable_rng

from .conftest import run_once

DEVICES = ("manila", "lima", "quito", "nairobi")
TRIALS = 3
SHOTS = 32000
SEED = 11


def _naive_trial_by_trial() -> dict:
    """The seed repo's idiom: rebuild + recalibrate everything per trial."""
    errors: dict = {}
    for device in DEVICES:
        for trial in range(TRIALS):
            backend = device_profile_backend(
                device, rng=stable_rng("bench-naive-backend", SEED, device, trial)
            )
            suite = default_method_suite(
                backend.coupling_map,
                rng=stable_rng("bench-naive-suite", SEED, device, trial),
                full_max_qubits=5,
            )
            circuit = ghz_bfs(backend.coupling_map)
            n = backend.num_qubits
            ideal = np.zeros(1 << n)
            ideal[0] = ideal[-1] = 0.5
            outcome = run_suite_once(suite, circuit, backend, SHOTS, ideal=ideal)
            for method, res in outcome.items():
                if res.available:
                    errors.setdefault((device, method), []).append(res.error)
    return errors


def _engine_spec() -> SweepSpec:
    return SweepSpec(
        backends=tuple(BackendSpec(kind="device", name=d) for d in DEVICES),
        circuits=(CircuitSpec(),),
        shots=(SHOTS,),
        trials=TRIALS,
        seed=SEED,
        full_max_qubits=5,
        share_backend_across_trials=True,
    )


def _record_keys(result):
    return [
        (r.backend_label, r.trial, r.circuit_label, r.method, r.error,
         r.shots_spent, r.circuits_executed, r.not_applicable)
        for r in result.records
    ]


def test_bench_pipeline_device_sweep(benchmark, emit):
    spec = _engine_spec()

    t0 = time.perf_counter()
    naive = _naive_trial_by_trial()
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = run_sweep(spec)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_once(benchmark, lambda: run_sweep(spec, workers=4))
    t_parallel = time.perf_counter() - t0

    # --- acceptance: 4 workers bit-identical to the serial path ----------
    assert _record_keys(parallel) == _record_keys(serial)

    # --- acceptance: measurably faster than trial-by-trial serial --------
    # Margin intentionally loose: the structural win (each device simulated
    # and calibrated once instead of once per trial) is ~3-10x, so a plain
    # inequality holds even on loaded single-core CI runners.
    assert t_parallel < t_naive, (
        f"engine (4 workers, {t_parallel:.2f}s) should beat naive "
        f"trial-by-trial serial execution ({t_naive:.2f}s)"
    )

    # --- calibration reuse did real work ---------------------------------
    assert parallel.cache_hits > 0
    assert parallel.saved_circuits > 0 and parallel.saved_shots > 0

    # --- science sanity: mitigation beats Bare on every device -----------
    for point, device in enumerate(DEVICES):
        bare = np.median(parallel.error_samples(point, "Bare"))
        cmc_err = np.median(parallel.error_samples(point, "CMC-ERR"))
        assert cmc_err < bare
        naive_bare = np.median(naive[(device, "Bare")])
        naive_cmc_err = np.median(naive[(device, "CMC-ERR")])
        assert naive_cmc_err < naive_bare

    rows = parallel.summary_rows()
    table = format_table(
        rows, parallel.column_labels(), row_header="method", precision=2
    )
    emit(
        "pipeline_device_sweep",
        table
        + "\n\n"
        + (
            f"naive trial-by-trial serial : {t_naive:8.2f}s\n"
            f"engine, serial              : {t_serial:8.2f}s\n"
            f"engine, 4 workers           : {t_parallel:8.2f}s "
            f"({t_naive / t_parallel:.1f}x vs naive)\n"
            f"calibration cache           : {parallel.cache_hits} hits, "
            f"{parallel.saved_circuits} circuit executions / "
            f"{parallel.saved_shots} shots of device time saved"
        ),
    )
