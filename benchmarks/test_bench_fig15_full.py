"""Fig. 15 — GHZ error rate on fully-connected (IonQ-style) architectures.

The quadratic edge count starves bare CMC of per-patch shots ("the CMC
method begins to suffer from a reduced number of shots per coupling map
patch"); JIGSAW becomes competitive with CMC at the top of the sweep, and
CMC-ERR — whose error map is capped at n edges — outperforms both (§VI-B).
"""

import pytest

from repro.experiments import format_series, ghz_architecture_sweep

from .conftest import run_once

QUBITS = [6, 8, 10, 12, 14, 16]
METHODS = ["Bare", "AIM", "SIM", "JIGSAW", "CMC", "CMC-ERR"]

_CACHE = {}


def full_sweep():
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = ghz_architecture_sweep(
            "fully_connected",
            QUBITS,
            shots=16000,
            trials=2,
            methods=METHODS,
            seed=1501,
            gate_noise=False,
        )
    return _CACHE["sweep"]


@pytest.fixture(scope="module")
def sweep():
    return full_sweep()


def test_bench_fig15_fully_connected(benchmark, emit):
    result = run_once(benchmark, full_sweep)
    emit(
        "fig15_fully_connected",
        format_series(
            "n", result.qubit_counts, {m: result.medians(m) for m in result.methods()}
        ),
    )
    idx = result.qubit_counts.index(16)
    assert result.medians("CMC-ERR")[idx] < result.medians("CMC")[idx]
    assert result.medians("CMC-ERR")[idx] < result.medians("Bare")[idx]


class TestFig15Shape:
    def test_cmc_degrades_at_scale(self, sweep):
        """CMC's advantage over Bare shrinks as edges grow quadratically."""
        reductions = sweep.reduction_vs_bare("CMC")
        assert reductions[0] is not None and reductions[-1] is not None
        assert reductions[-1] < reductions[0]

    def test_jigsaw_competitive_with_cmc_at_16(self, sweep):
        """'For this dense coupling map JIGSAW slightly outperforms CMC.'"""
        idx = sweep.qubit_counts.index(16)
        jig = sweep.medians("JIGSAW")[idx]
        cmc = sweep.medians("CMC")[idx]
        assert jig < cmc * 1.2  # JIGSAW at least competitive

    def test_cmc_err_beats_cmc_in_upper_half(self, sweep):
        upper = list(range(len(QUBITS) // 2, len(QUBITS)))
        wins = sum(
            1 for i in upper if sweep.medians("CMC-ERR")[i] < sweep.medians("CMC")[i]
        )
        assert wins >= len(upper) - 1
