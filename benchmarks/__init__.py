"""Benchmark package marker.

The bench modules import shared plumbing with ``from .conftest import
run_once``; making ``benchmarks`` a real package gives pytest the parent
package context it needs to resolve that relative import at collection
time (pytest's default *prepend* import mode names the modules
``benchmarks.test_bench_*`` because of this file).
"""
