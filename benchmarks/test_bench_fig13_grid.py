"""Fig. 13 — GHZ error rate vs qubit count on grid architectures.

Paper protocol: grid coupling maps (Google Sycamore family), n = 4..16,
16000 shots per method, one-norm distance to the ideal GHZ distribution.
Expected shape: Full/Linear best while feasible (then N/A); AIM/SIM
indistinguishable from Bare; CMC and CMC-ERR the best non-exponential
methods; JIGSAW in between.
"""

import pytest

from repro.experiments import format_series, ghz_architecture_sweep

from .conftest import run_once

QUBITS = [4, 6, 8, 10, 12, 14, 16]
SHOTS = 16000
TRIALS = 2

_CACHE = {}


def full_sweep():
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = ghz_architecture_sweep(
            "grid",
            QUBITS,
            shots=SHOTS,
            trials=TRIALS,
            seed=1301,
            gate_noise=False,  # isolates measurement error; see EXPERIMENTS.md
            full_max_qubits=10,
        )
    return _CACHE["sweep"]


@pytest.fixture(scope="module")
def sweep():
    return full_sweep()


def test_bench_fig13_grid(benchmark, emit):
    """Times the full Fig. 13 protocol, prints the series, checks shape."""
    result = run_once(benchmark, full_sweep)
    emit(
        "fig13_grid",
        format_series(
            "n", result.qubit_counts, {m: result.medians(m) for m in result.methods()}
        ),
    )
    # Headline shapes (the fine-grained ones live in TestFig13Shape):
    for b, c in zip(result.medians("Bare"), result.medians("CMC")):
        assert c < b
    idx_16 = result.qubit_counts.index(16)
    assert result.medians("Full")[idx_16] is None


class TestFig13Shape:
    def test_averaging_methods_track_bare(self, sweep):
        """AIM and SIM are 'nearly indistinguishable from the bare error
        rate' (§VI-B)."""
        for method in ("AIM", "SIM"):
            for b, m in zip(sweep.medians("Bare"), sweep.medians(method)):
                assert abs(m - b) < 0.15

    def test_cmc_beats_jigsaw_on_grid(self, sweep):
        """'JIGSAW outperforms the averaging methods, but is in turn
        outperformed by CMC.'"""
        wins = sum(
            1
            for j, c in zip(sweep.medians("JIGSAW"), sweep.medians("CMC"))
            if c < j
        )
        assert wins >= len(QUBITS) - 1

    def test_jigsaw_beats_averaging(self, sweep):
        wins = sum(
            1
            for j, s in zip(sweep.medians("JIGSAW"), sweep.medians("SIM"))
            if j < s
        )
        assert wins >= len(QUBITS) - 2

    def test_exponential_methods_na_at_scale(self, sweep):
        idx_16 = sweep.qubit_counts.index(16)
        assert sweep.medians("Full")[idx_16] is None
        assert sweep.medians("Linear")[idx_16] is None

    def test_full_best_while_feasible(self, sweep):
        """Full/Linear 'provide the greatest reduction in one-norm
        distance' at small n (§VI-B)."""
        idx_4 = sweep.qubit_counts.index(4)
        full = sweep.medians("Full")[idx_4]
        linear = sweep.medians("Linear")[idx_4]
        bare = sweep.medians("Bare")[idx_4]
        assert full is not None and full < bare * 0.5
        assert linear is not None and linear < bare * 0.7

    def test_cmc_reduction_meaningful(self, sweep):
        """CMC achieves a sizeable (paper: ~35% average) error reduction."""
        reductions = [r for r in sweep.reduction_vs_bare("CMC") if r is not None]
        assert sum(reductions) / len(reductions) > 0.3
