"""Fig. 10 — Hinton diagrams of the simulated measurement-error channels.

Regenerates the data behind both Fig. 10 panels: the correlated family
(single-qubit, all-pairs, triplet, flip-all) and the state-dependent family
over four qubits, rendering each as an ASCII Hinton diagram and checking
the structural facts the caption states (e.g. "the four-qubit channel only
has a single non-diagonal entry").
"""

import numpy as np
import pytest

from repro.analysis import hinton_data, render_hinton_ascii
from repro.noise import (
    MeasurementErrorChannel,
    ReadoutError,
    correlated_pair_channel,
    correlated_triplet_channel,
    flip_all_channel,
    state_dependent_channel,
)

from .conftest import run_once


def build_channel_matrices():
    """The eight Fig. 10 panels as dense 16x16 matrices."""
    n = 4
    panels = {}
    # Correlated family (left panel, clockwise from top left).
    single = MeasurementErrorChannel.from_readout_errors(
        [ReadoutError.symmetric(0.05)] * n
    )
    panels["correlated/single-qubit"] = single.to_matrix()
    pairs = MeasurementErrorChannel(n)
    for a in range(n):
        for b in range(a + 1, n):
            pairs.add_local((a, b), correlated_pair_channel(0.03))
    panels["correlated/two-qubit-all-pairs"] = pairs.to_matrix()
    triplets = MeasurementErrorChannel(n)
    for t in ((0, 1, 2), (1, 2, 3)):
        triplets.add_local(t, correlated_triplet_channel(0.05))
    panels["correlated/three-qubit-triplets"] = triplets.to_matrix()
    panels["correlated/four-qubit-flip-all"] = flip_all_channel(n, 0.08)
    # State-dependent family (right panel).
    sd1 = MeasurementErrorChannel.from_readout_errors(
        [ReadoutError(0.0, 0.1)] * n
    )
    panels["state-dependent/single-qubit"] = sd1.to_matrix()
    panels["state-dependent/four-qubit"] = state_dependent_channel(n, 0.2)
    return panels


def test_bench_fig10_hinton(benchmark, emit):
    panels = run_once(benchmark, build_channel_matrices)
    blocks = []
    for name, matrix in panels.items():
        blocks.append(f"--- {name} ---")
        blocks.append(render_hinton_ascii(matrix))
    emit("fig10_hinton", "\n".join(blocks))
    # Caption fact: the 4-qubit state-dependent channel has exactly one
    # off-diagonal entry.
    sd4 = panels["state-dependent/four-qubit"]
    off = sd4 - np.diag(np.diag(sd4))
    assert np.count_nonzero(off) == 1


class TestFig10Structure:
    @pytest.fixture(scope="class")
    def panels(self):
        return build_channel_matrices()

    def test_all_panels_stochastic(self, panels):
        from repro.utils.linalg import is_column_stochastic

        for name, m in panels.items():
            assert is_column_stochastic(m, atol=1e-8), name

    def test_flip_all_antidiagonal(self, panels):
        m = panels["correlated/four-qubit-flip-all"]
        for s in range(16):
            assert m[s ^ 0b1111, s] == pytest.approx(0.08)

    def test_state_dependent_zero_state_error_free(self, panels):
        for name in ("state-dependent/single-qubit", "state-dependent/four-qubit"):
            m = panels[name]
            assert m[0, 0] == pytest.approx(1.0)

    def test_pairwise_channel_distance_two_flips(self, panels):
        """All-pairs channel moves first-order mass only to Hamming
        distance-2 states; distance-4 terms exist but are second order
        (two pair flips, ~p^2)."""
        m = panels["correlated/two-qubit-all-pairs"]
        col = m[:, 0]
        for s in np.flatnonzero(col > 5e-3):  # above the p^2 = 9e-4 floor
            assert bin(int(s)).count("1") in (0, 2)
        # second-order mass exists but is tiny
        assert 0 < col[0b1111] < 0.01

    def test_hinton_data_entries(self, panels):
        data = hinton_data(panels["state-dependent/four-qubit"])
        assert data["num_qubits"] == 4
        assert ("1111", "0000", pytest.approx(0.2)) in [
            (i, o, pytest.approx(p)) for i, o, p in data["entries"]
        ]
