"""§VII-A — ERR characterisations are stable on the order of weeks.

Recovers an independent error coupling map from each of four drifted
weekly snapshots of a Nairobi-like device and reports the pairwise edge-set
overlap.  Expected: high Jaccard overlap between weeks, every week
recovering the persistent injected correlation pairs — so an ERR profile
can be reused across calibration cycles (the reuse argument of §VII-A).
"""

import pytest

from repro.experiments import err_stability_experiment
from repro.experiments.report import format_table

from .conftest import run_once

_CACHE = {}


def full_experiment():
    if "res" not in _CACHE:
        _CACHE["res"] = err_stability_experiment(
            "nairobi", weeks=4, shots_per_week=64000, seed=71
        )
    return _CACHE["res"]


@pytest.fixture(scope="module")
def result():
    return full_experiment()


def test_bench_err_stability(benchmark, emit):
    res = run_once(benchmark, full_experiment)
    rows = {
        f"week {w}": {
            "error map edges": str(res.weekly_maps[w].edges),
            "recall of injected": res.weekly_recall()[w],
        }
        for w in range(res.weeks)
    }
    rows["summary"] = {
        "error map edges": f"stable core: {res.stable_core()}",
        "recall of injected": res.mean_jaccard(),
    }
    emit(
        "err_stability",
        format_table(rows, ["error map edges", "recall of injected"], row_header="week"),
    )
    assert res.mean_jaccard() > 0.5


class TestErrStability:
    def test_every_week_recovers_injected_pairs(self, result):
        for recall in result.weekly_recall():
            assert recall >= 2 / 3  # at least 2 of 3 injected pairs

    def test_stable_core_contains_injected(self, result):
        core = set(result.stable_core())
        injected = set(result.injected_edges)
        assert len(core & injected) >= 2

    def test_overlap_high(self, result):
        assert result.mean_jaccard() > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            err_stability_experiment("nairobi", weeks=1)
