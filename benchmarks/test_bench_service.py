"""Sweep-service benchmarks (ISSUE 4): streaming overhead + throughput.

Two operational claims of ``repro.service``, measured:

* **streaming is nearly free** — submitting a grid through the asyncio
  coordinator and consuming every journal row live costs little over a
  direct ``run_sweep`` of the same spec (the event loop only shuttles
  completed outcomes; the compute path is byte-for-byte the engine's),
  and the streamed result is bit-identical to the direct one;
* **concurrent submission beats serial** — four small sweeps submitted
  together to a process-backed coordinator finish faster than the same
  four run back to back, because their tasks interleave on the pool.

Wall-clock floors are strict only under ``run_bench.py``
(``REPRO_BENCH_STRICT=1``); the tier-1 suite enforces just the
catastrophic-regression bounds, so noisy shared runners never gate
merges.  Machine-readable blobs route to ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep
from repro.service import SweepCoordinator

from .conftest import RESULTS_DIR, run_once

SEED = 31
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

# streaming overhead: service wall-clock may be at most this multiple of
# the direct engine run
OVERHEAD_CAP = 1.35 if STRICT else 2.5
# concurrent throughput: speedup of 4 concurrent sweeps vs serial.  The
# strict floor needs real cores to interleave on — a single-CPU box can
# at best tie serial, so it only enforces the catastrophic floor there.
REQUIRED_SPEEDUP = 1.3
RELAXED_SPEEDUP = 0.5  # floor: the service must never be badly slower


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _grid_spec(seed: int = SEED, trials: int = 2) -> SweepSpec:
    # gate-noise devices exercise the trajectory engine: seconds of real
    # compute per grid, so the measured overhead is the service's actual
    # cost share, not the event loop start-up against a millisecond sweep
    return SweepSpec(
        backends=(
            BackendSpec(kind="device", name="quito", gate_noise=True),
            BackendSpec(kind="device", name="lima", gate_noise=True),
        ),
        circuits=(CircuitSpec(root=0),),
        shots=(16000,),
        methods=("Bare", "Linear", "CMC"),
        trials=trials,
        seed=seed,
        full_max_qubits=5,
    )


def record_keys(result):
    return [
        (r.backend_label, r.trial, r.shots, r.circuit_label, r.method, r.error)
        for r in result.records
    ]


def _submit_and_stream(store_dir, spec):
    """One sweep through the coordinator, every row consumed live."""

    async def body():
        coord = SweepCoordinator(store_dir, workers=1)
        job = await coord.submit(spec)
        rows = [event async for event in coord.watch(job.sweep_id)]
        result = await coord.result(job.sweep_id)
        await coord.close()
        return rows, result

    return asyncio.run(body())


def test_bench_service_streaming_overhead(benchmark, emit, tmp_path):
    spec = _grid_spec()

    run_sweep(spec)  # warm numpy/JIT caches so the baseline is honest
    t0 = time.perf_counter()
    direct = run_sweep(spec)
    t_direct = time.perf_counter() - t0

    rows, streamed = run_once(
        benchmark, lambda: _submit_and_stream(tmp_path / "store-bench", spec)
    )
    t_service = float("inf")
    for i in range(2):  # best-of to damp jitter (fresh store: stays cold)
        t0 = time.perf_counter()
        rows, streamed = _submit_and_stream(tmp_path / f"store-{i}", spec)
        t_service = min(t_service, time.perf_counter() - t0)
    overhead = t_service / t_direct if t_direct > 0 else float("inf")

    # --- acceptance: same rows, same result, bounded overhead ----------
    assert len(rows) == spec.num_tasks  # every journal row, exactly once
    assert record_keys(streamed) == record_keys(direct)
    assert overhead <= OVERHEAD_CAP, (
        f"service streaming cost {overhead:.2f}x the direct run "
        f"(cap {OVERHEAD_CAP}x)"
    )

    blob = {
        "name": "service_streaming_overhead",
        "artifact": "BENCH_service.json",
        "workload": {
            "devices": ["quito", "lima"],
            "trials": 2,
            "shots": 4000,
            "methods": ["Bare", "Linear", "CMC"],
        },
        "direct_s": t_direct,
        "service_s": t_service,
        "overhead": overhead,
        "rows_streamed": len(rows),
        "strict": STRICT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_streaming_overhead.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "service_streaming_overhead",
        (
            f"direct run_sweep:    {t_direct:.2f}s\n"
            f"service + watch:     {t_service:.2f}s "
            f"({len(rows)} rows streamed live)\n"
            f"overhead:            {overhead:.2f}x (cap {OVERHEAD_CAP}x)"
        ),
    )


def test_bench_service_concurrent_throughput(benchmark, emit, tmp_path):
    # gate-noise sweeps run the trajectory engine — seconds of real compute
    # per task, so the pool has work to interleave (2 tasks x 4 sweeps
    # over 4 process workers); measurement-only grids finish in
    # milliseconds and would only benchmark process spawn + fsync
    specs = [
        SweepSpec(
            backends=(
                BackendSpec(kind="device", name="quito", gate_noise=True),
                BackendSpec(kind="device", name="nairobi", gate_noise=True),
            ),
            circuits=(CircuitSpec(root=0),),
            shots=(16000,),
            methods=("CMC", "CMC-ERR", "JIGSAW", "SIM"),
            trials=1,
            seed=100 + i,
            full_max_qubits=5,
        )
        for i in range(4)
    ]

    t0 = time.perf_counter()
    serial_results = [run_sweep(spec) for spec in specs]
    t_serial = time.perf_counter() - t0

    def concurrent():
        async def body():
            coord = SweepCoordinator(
                tmp_path / "store-conc", workers=4, use_processes=True
            )
            jobs = [await coord.submit(spec) for spec in specs]
            results = await asyncio.gather(
                *(coord.result(job.sweep_id) for job in jobs)
            )
            await coord.close()
            return list(results)

        return asyncio.run(body())

    concurrent_results = run_once(benchmark, concurrent)
    t_concurrent = float(benchmark.stats["mean"])
    speedup = t_serial / t_concurrent if t_concurrent > 0 else float("inf")

    # --- acceptance: all four bit-identical, faster together -----------
    for serial, conc in zip(serial_results, concurrent_results):
        assert record_keys(serial) == record_keys(conc)
    cores = _available_cores()
    floor = REQUIRED_SPEEDUP if (STRICT and cores >= 2) else RELAXED_SPEEDUP
    assert speedup >= floor, (
        f"4 concurrent sweeps only {speedup:.2f}x vs serial (floor {floor}x)"
    )

    blob = {
        "name": "service_concurrent_throughput",
        "artifact": "BENCH_service.json",
        "workload": {
            "sweeps": 4,
            "devices": ["quito", "lima"],
            "trials": 1,
            "shots": 4000,
            "methods": ["Bare", "Linear", "CMC"],
            "workers": 4,
            "executor": "processes",
        },
        "serial_s": t_serial,
        "concurrent_s": t_concurrent,
        "speedup": speedup,
        "cores": cores,
        "strict": STRICT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_concurrent_throughput.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "service_concurrent_throughput",
        (
            f"4 sweeps serial:      {t_serial:.2f}s\n"
            f"4 sweeps concurrent:  {t_concurrent:.2f}s "
            f"(4 process workers, one coordinator)\n"
            f"speedup:              {speedup:.2f}x (floor {floor}x)"
        ),
    )
