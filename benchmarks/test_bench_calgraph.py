"""Calibration-DAG incremental recalibration benchmark (ISSUE 8 tentpole).

The headline claim of the calgraph subsystem, measured end-to-end on a
quadratic-edge device: a fully-connected 16-qubit register has 120 CMC
edge patches, and when **k** edges drift between calibration cycles an
incremental run executes exactly **k** nodes — while the assembled
calibration state, and the mitigated error it produces, are bit-identical
to throwing everything away and recalibrating the drifted device from
scratch.

Asserted invariants:

* the incremental run executes exactly the k drifted edge nodes (every
  other node restores from the store);
* shot savings are structural: full-from-scratch spends edges/k times the
  fresh shots of the incremental run (120/3 = 40x here, floor 3x);
* wall-clock savings meet the floor below (strict under ``run_bench.py``;
  relaxed in the tier-1 suite — perf never gates merges on noisy shared
  runners);
* ``assemble_calibration_state`` over the incremental report is
  ``deep_equal`` to the from-scratch report's, and a GHZ circuit mitigated
  through either calibration yields byte-identical counts.

A machine-readable blob goes to
``benchmarks/results/calgraph_incremental.bench.json``; ``run_bench.py``
folds it into ``BENCH_calgraph.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import time

import numpy as np

from repro.backends.backend import SimulatedBackend
from repro.backends.budget import ShotBudget
from repro.backends.profiles import ARCHITECTURES
from repro.calgraph import (
    CalibrationGraphCache,
    CalibrationScheduler,
    assemble_calibration_state,
    build_calibration_graph,
)
from repro.circuits.library import ghz_bfs
from repro.core import CMCMitigator
from repro.noise.drift import drift_noise_model
from repro.noise.models import random_device_noise
from repro.store import ArtifactStore, deep_equal

from .conftest import RESULTS_DIR, run_once

NUM_QUBITS = 16
DRIFT_EDGES = 3
SHOTS_PER_NODE = 64
SEED = 29
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
REQUIRED_SPEEDUP = 3.0
RELAXED_SPEEDUP = 1.0  # catastrophic-regression floor: incremental never slower


def _scheduler(graph, root, device):
    return CalibrationScheduler(
        graph,
        CalibrationGraphCache(ArtifactStore(root)),
        device=device,
        method="CMC",
        shots_per_node=SHOTS_PER_NODE,
        seed=SEED,
    )


def _mitigated_counts(cm, state, model):
    """GHZ counts mitigated through ``state`` on a fixed-seed backend."""
    mitigator = CMCMitigator(cm, k=1)
    mitigator.load_calibration_state(state)
    backend = SimulatedBackend(cm, model, rng=np.random.default_rng(SEED + 7))
    return mitigator.execute(ghz_bfs(cm), backend, ShotBudget(40_000))


def test_bench_calgraph_incremental(benchmark, emit, tmp_path):
    cm = ARCHITECTURES["fully_connected"](NUM_QUBITS)
    model = random_device_noise(
        cm,
        error_1q=0.0,
        error_2q=0.0,
        correlation_placement="coupling",
        num_correlated=6,
        rng=np.random.default_rng(SEED),
    )
    drift_edges = [tuple(e) for e in model.correlated_edges[:DRIFT_EDGES]]
    drifted = drift_noise_model(
        model, edges=drift_edges, rng=np.random.default_rng(SEED + 1)
    )
    graph = build_calibration_graph("CMC", cm)
    num_edges = len(graph)
    assert num_edges == NUM_QUBITS * (NUM_QUBITS - 1) // 2  # quadratic-edge

    # ---- warm the store under the base model, then the device drifts ----
    base_root = tmp_path / "base"
    base_report = _scheduler(graph, base_root, "fc16").run(
        SimulatedBackend(cm, model, rng=np.random.default_rng(0))
    )
    assert len(base_report.executed) == num_edges

    # Each timed repetition runs against a fresh clone of the warmed base
    # store: the true incremental workload (restore the clean subgraph,
    # execute the dirty frontier), not a second, fully-warm replay.
    def incremental_run(root):
        shutil.copytree(base_root, root)
        sched = _scheduler(graph, root, "fc16")
        return sched.run(SimulatedBackend(cm, drifted, rng=np.random.default_rng(1)))

    inc_report = run_once(
        benchmark, lambda: incremental_run(tmp_path / "inc0")
    )
    t_inc = float("inf")
    for i in range(2):  # best-of to damp shared-runner jitter
        root = tmp_path / f"inc{i + 1}"
        shutil.copytree(base_root, root)
        sched = _scheduler(graph, root, "fc16")
        t0 = time.perf_counter()
        rerun = sched.run(SimulatedBackend(cm, drifted, rng=np.random.default_rng(1)))
        t_inc = min(t_inc, time.perf_counter() - t0)
        assert rerun.executed == inc_report.executed

    # ---- from scratch: cold store, drifted model only --------------------
    full = _scheduler(graph, tmp_path / "full", "fc16")
    t0 = time.perf_counter()
    full_report = full.run(SimulatedBackend(cm, drifted, rng=np.random.default_rng(2)))
    t_full = time.perf_counter() - t0

    # --- acceptance: O(k) nodes, bit-identical states and mitigation ------
    expected_dirty = sorted(f"edge:{a}-{b}" for a, b in drift_edges)
    assert inc_report.executed == expected_dirty
    assert len(inc_report.restored) == num_edges - DRIFT_EDGES
    assert len(full_report.executed) == num_edges

    shots_ratio = full_report.fresh_shots / inc_report.fresh_shots
    assert shots_ratio >= num_edges / DRIFT_EDGES  # structural, not timed

    inc_state = assemble_calibration_state("CMC", inc_report.node_states())
    full_state = assemble_calibration_state("CMC", full_report.node_states())
    assert deep_equal(inc_state, full_state)
    inc_counts = _mitigated_counts(cm, inc_state, drifted)
    full_counts = _mitigated_counts(cm, full_state, drifted)
    assert inc_counts == full_counts  # byte-identical mitigated output

    speedup = t_full / t_inc if t_inc > 0 else float("inf")
    floor = REQUIRED_SPEEDUP if STRICT else RELAXED_SPEEDUP
    assert speedup >= floor, (
        f"incremental recalibration only {speedup:.2f}x vs from-scratch "
        f"(floor {floor}x)"
    )

    blob = {
        "name": "calgraph_incremental",
        "artifact": "BENCH_calgraph.json",
        "workload": {
            "architecture": "fully_connected",
            "qubits": NUM_QUBITS,
            "edge_nodes": num_edges,
            "drifted_edges": DRIFT_EDGES,
            "shots_per_node": SHOTS_PER_NODE,
            "method": "CMC",
        },
        "full_s": t_full,
        "incremental_s": t_inc,
        "speedup": speedup,
        "strict": STRICT,
        "nodes_executed": len(inc_report.executed),
        "nodes_restored": len(inc_report.restored),
        "fresh_shots": {
            "full": full_report.fresh_shots,
            "incremental": inc_report.fresh_shots,
        },
        "shots_ratio": shots_ratio,
        "states_bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "calgraph_incremental.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "calgraph_incremental",
        (
            f"from-scratch recalibration: {t_full:.2f}s "
            f"({num_edges} nodes, {full_report.fresh_shots} shots)\n"
            f"incremental after {DRIFT_EDGES}-edge drift: {t_inc:.2f}s "
            f"({len(inc_report.executed)} nodes, {inc_report.fresh_shots} shots)\n"
            f"speedup: {speedup:.2f}x wall-clock, {shots_ratio:.0f}x shots; "
            f"states and mitigated counts bit-identical"
        ),
    )
