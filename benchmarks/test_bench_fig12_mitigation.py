"""Fig. 12 — success-probability distributions under focused error models.

Two panels: (a) purely correlated measurement errors, (b) purely
state-dependent errors, over four qubits and all 16 basis states with equal
budgets (the paper's 136000 total trials ≈ 8500 shots per state).
Expected shapes (§VI-A):

* correlated panel — AIM/SIM averaging "has no overall effect"; CMC
  performs well; Full/Linear best but Full carries a sampling tail;
* state-dependent panel — the |0...0> state is error-free, averaging
  narrows the distribution, calibration methods dominate;
* JIGSAW suffers sub-table pathologies on these focused models (its spread
  bifurcates) — "should not be considered representative".
"""

import numpy as np
import pytest

from repro.experiments import simulated_channel_benchmark
from repro.experiments.report import format_table

from .conftest import run_once

_CACHE = {}


def both_panels():
    if not _CACHE:
        _CACHE["correlated"] = simulated_channel_benchmark(
            "correlated", shots_per_state=8500, strength=0.08, seed=121
        )
        _CACHE["state_dependent"] = simulated_channel_benchmark(
            "state_dependent", shots_per_state=8500, strength=0.08, seed=122
        )
    return _CACHE


@pytest.fixture(scope="module")
def panels():
    return both_panels()


def test_bench_fig12_channel_mitigation(benchmark, emit):
    results = run_once(benchmark, both_panels)
    for kind, res in results.items():
        rows = {
            method: {
                "mean success": res.mean(method),
                "spread (5-95%)": res.summary(method),
            }
            for method in res.methods()
        }
        emit(
            f"fig12_{kind}",
            format_table(rows, ["mean success", "spread (5-95%)"], row_header="method"),
        )
    corr = results["correlated"]
    assert corr.mean("CMC") > corr.mean("SIM")


class TestFig12Correlated:
    def test_averaging_has_no_effect(self, panels):
        res = panels["correlated"]
        bare = float(np.mean(res.bare_successes))
        for method in ("AIM", "SIM"):
            assert abs(res.mean(method) - bare) < 0.06

    def test_cmc_performs_well(self, panels):
        res = panels["correlated"]
        bare = float(np.mean(res.bare_successes))
        assert res.mean("CMC") > bare + 0.05

    def test_exponential_methods_best(self, panels):
        """'CMC ... is outperformed by the Linear and Full methods.'

        With a purely pairwise-correlated channel Full is exact up to shot
        noise; Linear rides on the fact that the channel's single-qubit
        marginals capture most of the damage."""
        res = panels["correlated"]
        assert res.mean("Full") >= res.mean("CMC") - 0.05

    def test_full_has_sampling_tail(self, panels):
        """Constrained shots leave Full with a visible lower tail."""
        res = panels["correlated"]
        s = res.summary("Full")
        assert s.minus > 0.0


class TestFig12StateDependent:
    def test_zero_state_error_free(self, panels):
        res = panels["state_dependent"]
        # The first prepared state (|0000>) has success ~1 bare.
        assert res.bare_successes[0] > 0.99

    def test_averaging_narrows_but_does_not_fix(self, panels):
        res = panels["state_dependent"]
        bare_spread = float(
            np.quantile(res.bare_successes, 0.95) - np.quantile(res.bare_successes, 0.05)
        )
        sim_spread = res.summary("SIM").plus + res.summary("SIM").minus
        assert sim_spread < bare_spread + 0.05

    def test_calibration_methods_dominate(self, panels):
        res = panels["state_dependent"]
        bare = float(np.mean(res.bare_successes))
        for method in ("Full", "Linear", "CMC"):
            assert res.mean(method) > bare

    def test_cmc_close_to_linear(self, panels):
        """State-dependent errors are per-qubit: CMC's patches capture them
        as well as Linear does (within a small margin)."""
        res = panels["state_dependent"]
        assert res.mean("CMC") > res.mean("Linear") - 0.08
