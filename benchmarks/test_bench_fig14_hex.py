"""Fig. 14 — GHZ error rate vs qubit count on hexagonal (heavy-hex)
architectures.

Fig. 14 omits Full and Linear entirely (N/A at the swept sizes on real
queues); the non-exponential ordering should match the grid: CMC/CMC-ERR
best, JIGSAW next, AIM/SIM at Bare.
"""

import pytest

from repro.experiments import format_series, ghz_architecture_sweep

from .conftest import run_once

QUBITS = [6, 8, 10, 12, 14, 16]
METHODS = ["Bare", "AIM", "SIM", "JIGSAW", "CMC", "CMC-ERR"]

_CACHE = {}


def full_sweep():
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = ghz_architecture_sweep(
            "hexagonal",
            QUBITS,
            shots=16000,
            trials=2,
            methods=METHODS,
            seed=1401,
            gate_noise=False,
        )
    return _CACHE["sweep"]


@pytest.fixture(scope="module")
def sweep():
    return full_sweep()


def test_bench_fig14_hex(benchmark, emit):
    result = run_once(benchmark, full_sweep)
    emit(
        "fig14_hex",
        format_series(
            "n", result.qubit_counts, {m: result.medians(m) for m in result.methods()}
        ),
    )
    assert "Full" not in result.methods()
    wins = sum(
        1
        for j, c in zip(result.medians("JIGSAW"), result.medians("CMC"))
        if c < j
    )
    assert wins >= len(QUBITS) - 1


class TestFig14Shape:
    def test_cmc_best_non_exponential(self, sweep):
        """CMC or CMC-ERR has the lowest median at (almost) every size."""
        others = ["Bare", "AIM", "SIM", "JIGSAW"]
        wins = 0
        for i in range(len(QUBITS)):
            best_cmc = min(sweep.medians("CMC")[i], sweep.medians("CMC-ERR")[i])
            if all(best_cmc < sweep.medians(o)[i] for o in others):
                wins += 1
        assert wins >= len(QUBITS) - 1

    def test_error_grows_with_size(self, sweep):
        bare = sweep.medians("Bare")
        assert bare[-1] > bare[0]

    def test_averaging_methods_track_bare(self, sweep):
        for method in ("AIM", "SIM"):
            for b, m in zip(sweep.medians("Bare"), sweep.medians(method)):
                assert abs(m - b) < 0.15
