"""Fig. 3 — error probability vs sequential-X depth (state dependence).

4000 shots per depth, depths 0..45 on a Quito-like single qubit.  Expected
shape: the |1>-expected (odd-depth) error floor sits well above the
|0>-expected (even-depth) floor at every depth band, and the gap dwarfs the
slow gate-error drift — the signature of state-dependent measurement error.
"""

import numpy as np
import pytest

from repro.experiments import x_chain_experiment
from repro.experiments.report import format_series
from repro.experiments.xchain import quito_like_backend

from .conftest import run_once

_CACHE = {}


def full_experiment():
    if "res" not in _CACHE:
        _CACHE["res"] = x_chain_experiment(
            quito_like_backend(rng=303), max_depth=45, shots=4000
        )
    return _CACHE["res"]


@pytest.fixture(scope="module")
def result():
    return full_experiment()


def test_bench_fig03_xchain(benchmark, emit):
    res = run_once(benchmark, full_experiment)
    even = dict(res.even_series())
    odd = dict(res.odd_series())
    depths = res.depths
    emit(
        "fig03_xchain",
        format_series(
            "depth",
            depths,
            {
                "expected |0> error": [even.get(d) for d in depths],
                "expected |1> error": [odd.get(d) for d in depths],
            },
        ),
    )
    assert res.parity_gap() > 0.04


class TestFig03Shape:
    def test_odd_floor_above_even_floor(self, result):
        even = [e for _d, e in result.even_series()]
        odd = [e for _d, e in result.odd_series()]
        assert np.mean(odd) > np.mean(even) + 0.04

    def test_even_errors_stay_low(self, result):
        """|0>-expected error stays near the p01 floor (no exponential
        blow-up with depth — measurement, not gate, errors dominate)."""
        even = [e for _d, e in result.even_series()]
        assert max(even) < 0.08

    def test_odd_errors_in_fig3_band(self, result):
        """|1>-expected errors sit in Fig. 3's ~7.5-17.5% band."""
        odd = [e for _d, e in result.odd_series()]
        assert 0.05 < np.mean(odd) < 0.2

    def test_mild_upward_drift_with_depth(self, result):
        """Gate noise adds a slow upward drift within each parity class."""
        even = result.even_series()
        first = np.mean([e for d, e in even if d <= 10])
        last = np.mean([e for d, e in even if d >= 36])
        assert last >= first - 0.01  # non-decreasing within noise
