"""Fleet benchmarks (ISSUE 6): distribution overhead + chaos convergence.

Two operational claims of ``repro.service.fleet``, measured:

* **the fleet tax is small** — a sweep drained by four remote workers
  (real TCP, lease round-trips, JSON task payloads) costs little over
  the same sweep on the coordinator's own four-slot local pool, and the
  fleet result is bit-identical to the local one;
* **chaos converges at chaos prices** — under a seeded transient-fault
  storm on the store *and* workers dying with results in hand, the sweep
  still finishes, re-issues the dead workers' coordinates, and lands
  bit-identical records with zero duplicated journal rows.

Wall-clock caps are strict only under ``run_bench.py``
(``REPRO_BENCH_STRICT=1``); the tier-1 suite enforces just the
catastrophic-regression bounds, so noisy shared runners never gate
merges.  Machine-readable blobs route to ``BENCH_fleet.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep
from repro.service import FleetWorker, SweepCoordinator, SweepServer
from repro.service.client import submit_and_follow
from repro.store import (
    ArtifactStore,
    FaultyBackend,
    MemoryBackend,
    reset_memory_spaces,
)

from .conftest import RESULTS_DIR, run_once

SEED = 43
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: fleet wall-clock may cost at most this multiple of the local pool
OVERHEAD_CAP = 1.3 if STRICT else 3.0

WORKERS = 4


def _grid_spec(trials: int = 2) -> SweepSpec:
    # gate-noise devices exercise the trajectory engine: real compute per
    # task, so the measured overhead is the wire's actual cost share
    return SweepSpec(
        backends=(
            BackendSpec(kind="device", name="quito", gate_noise=True),
            BackendSpec(kind="device", name="lima", gate_noise=True),
        ),
        circuits=(CircuitSpec(root=0),),
        shots=(16000,),
        methods=("Bare", "Linear", "CMC"),
        trials=trials,
        seed=SEED,
        full_max_qubits=5,
    )


def record_keys(result):
    return [
        (r.backend_label, r.trial, r.shots, r.circuit_label, r.method, r.error)
        for r in result.records
    ]


def _run_local_pool(store_dir, spec):
    """The baseline: the coordinator's own thread pool drains the sweep."""

    async def body():
        coord = SweepCoordinator(store_dir, workers=WORKERS)
        job = await coord.submit(spec)
        result = await coord.result(job.sweep_id)
        await coord.close()
        return result

    return asyncio.run(body())


def _run_fleet(store, spec, worker_kwargs_list, lease_ttl=30.0):
    """A sweep drained entirely by in-process fleet workers over TCP."""

    async def body():
        server = await SweepServer(
            store, port=0, workers=0, lease_ttl=lease_ttl
        ).start()
        stop = threading.Event()
        workers = [
            FleetWorker(port=server.port, poll=0.02, name=f"bw{i}", **kwargs)
            for i, kwargs in enumerate(worker_kwargs_list)
        ]
        threads = [
            threading.Thread(target=w.run_sync, args=(stop.is_set,), daemon=True)
            for w in workers
        ]
        for t in threads:
            t.start()
        try:
            result = await asyncio.to_thread(
                submit_and_follow, spec, "127.0.0.1", server.port
            )
            reissued = max(j.reissued for j in server.coordinator.jobs())
        finally:
            stop.set()
            for t in threads:
                await asyncio.to_thread(t.join, 30)
            await server.close()
        return result, workers, reissued

    return asyncio.run(body())


def test_bench_fleet_overhead_vs_local_pool(benchmark, emit, tmp_path):
    spec = _grid_spec()

    run_sweep(spec)  # warm numpy/JIT caches so the baseline is honest
    t0 = time.perf_counter()
    local = _run_local_pool(tmp_path / "store-local", spec)
    t_local = time.perf_counter() - t0

    def fleet():
        # a fresh store per round keeps every task cold, like the baseline
        fleet.round += 1
        return _run_fleet(
            tmp_path / f"store-fleet-{fleet.round}",
            spec,
            [{} for _ in range(WORKERS)],
        )

    fleet.round = 0
    result, workers, _ = run_once(benchmark, fleet)
    t_fleet = float(benchmark.stats["mean"])
    overhead = t_fleet / t_local if t_local > 0 else float("inf")

    # --- acceptance: bit-identical result, bounded distribution tax ----
    assert record_keys(result) == record_keys(local)
    assert sum(w.report.completed for w in workers) == spec.num_tasks
    assert overhead <= OVERHEAD_CAP, (
        f"fleet of {WORKERS} cost {overhead:.2f}x the local {WORKERS}-slot "
        f"pool (cap {OVERHEAD_CAP}x)"
    )

    blob = {
        "name": "fleet_overhead_vs_local_pool",
        "artifact": "BENCH_fleet.json",
        "workload": {
            "devices": ["quito", "lima"],
            "trials": 2,
            "shots": 16000,
            "methods": ["Bare", "Linear", "CMC"],
            "fleet_workers": WORKERS,
            "local_workers": WORKERS,
        },
        "local_pool_s": t_local,
        "fleet_s": t_fleet,
        "overhead": overhead,
        "strict": STRICT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet_overhead_vs_local_pool.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "fleet_overhead_vs_local_pool",
        (
            f"local {WORKERS}-slot pool:  {t_local:.2f}s\n"
            f"fleet of {WORKERS} (TCP):   {t_fleet:.2f}s\n"
            f"overhead:            {overhead:.2f}x (cap {OVERHEAD_CAP}x)"
        ),
    )


def test_bench_fleet_chaos_convergence(benchmark, emit):
    """Seeded fault storm + two workers dying with results in hand: the
    sweep must still converge bit-identically, at a measured price."""
    spec = _grid_spec()
    reference = run_sweep(spec)

    space = "bench-fleet-chaos"
    reset_memory_spaces(space)
    # every coordinator store touch (journal, queue) rides bounded
    # retries, so a 3% seeded pre-op transient rate is survivable; the
    # memory backend is process-local, so workers run storeless and the
    # storm never reaches an unprotected path
    backend = FaultyBackend(
        MemoryBackend(space), transient_rate=0.03, seed=SEED
    )

    def chaos():
        reset_memory_spaces(space)
        return _run_fleet(
            ArtifactStore(backend),
            spec,
            # two workers execute their first task fully, then die
            # without reporting it; two healthy peers absorb the re-issues
            [
                {"die_before_complete": 1},
                {"die_before_complete": 1},
                {},
                {},
            ],
            lease_ttl=0.5,
        )

    result, workers, reissued = run_once(benchmark, chaos)
    t_chaos = float(benchmark.stats["mean"])

    # --- acceptance: converged, re-issued, exactly-once ----------------
    assert record_keys(result) == record_keys(reference)
    assert sum(w.report.died for w in workers) == 2
    assert reissued >= 2, (
        f"expected both dead workers' coordinates re-issued, saw {reissued}"
    )
    assert sum(w.report.completed for w in workers) == spec.num_tasks

    blob = {
        "name": "fleet_chaos_convergence",
        "artifact": "BENCH_fleet.json",
        "workload": {
            "devices": ["quito", "lima"],
            "trials": 2,
            "shots": 16000,
            "methods": ["Bare", "Linear", "CMC"],
            "fleet_workers": WORKERS,
            "workers_killed": 2,
            "transient_rate": 0.03,
            "lease_ttl_s": 0.5,
        },
        "chaos_s": t_chaos,
        "reissued": reissued,
        "strict": STRICT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet_chaos_convergence.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "fleet_chaos_convergence",
        (
            f"storm + 2 worker deaths: {t_chaos:.2f}s to bit-identical "
            f"records\n"
            f"coordinates re-issued:   {reissued}\n"
            f"journal rows duplicated: 0 (by construction, asserted)"
        ),
    )
