"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify what each ingredient of CMC
buys, using the same GHZ protocol:

* **order correction** (Eqs. 5-7): joining overlapping patches *without*
  the fractional-power correction double-counts shared-qubit errors;
* **patch separation k** (Algorithm 1): calibration circuit count vs
  mitigation accuracy as the simultaneity constraint loosens/tightens;
* **calibration fraction**: how the calibration/target budget split moves
  the error (too few calibration shots -> bad matrices; too few target
  shots -> sampling noise);
* **patch size** (§IV-B extension): edge patches vs 3-qubit path patches
  under 3-qubit correlated noise.
"""

import numpy as np
import pytest

from repro.analysis import one_norm_distance
from repro.backends import ShotBudget, SimulatedBackend
from repro.circuits import ghz_bfs
from repro.core import CMCMitigator
from repro.core.joining import JoinedCalibration
from repro.core.patches import build_patch_rounds, path_patches
from repro.experiments.report import format_table
from repro.noise import (
    MeasurementErrorChannel,
    NoiseModel,
    ReadoutError,
    correlated_pair_channel,
)
from repro.noise.correlated import correlated_triplet_channel
from repro.topology import grid, linear

from .conftest import run_once


def chain_backend(n=6, seed=0, pair_strength=0.08):
    cmap = linear(n)
    ch = MeasurementErrorChannel(n)
    for q in range(n):
        ch.add_readout(q, ReadoutError(0.02, 0.05))
    for e in cmap.edges:
        ch.add_local(e, correlated_pair_channel(pair_strength))
    return SimulatedBackend(cmap, NoiseModel.measurement_only(ch), rng=seed)


def ghz_ideal(n):
    v = np.zeros(1 << n)
    v[0] = v[-1] = 0.5
    return v


def run_cmc(backend, shots, seed_unused=None, fraction=0.5, joined_kwargs=None, **cmc_kwargs):
    cmap = backend.coupling_map
    qc = ghz_bfs(cmap)
    mit = CMCMitigator(cmap, **cmc_kwargs)
    budget = ShotBudget(shots)
    mit.prepare(backend, budget, calibration_fraction=fraction)
    out = mit.execute(qc, backend, budget)
    return one_norm_distance(out, ghz_ideal(cmap.num_qubits))


# ----------------------------------------------------------------------
# Ablation 1: the Eq. 5-7 order correction
# ----------------------------------------------------------------------
def order_correction_ablation():
    """Mitigate a GHZ with corrected vs naive joins of exact calibrations."""
    backend = chain_backend(n=5, seed=11)
    cmap = backend.coupling_map
    truth = backend.noise_model.measurement_channel
    from repro.core import CalibrationMatrix

    patches = [CalibrationMatrix.exact_from_channel(truth, e) for e in cmap.edges]
    qc = ghz_bfs(cmap)
    observed = backend.exact_distribution(qc)
    from repro.counts import SparseDistribution

    dist = SparseDistribution.from_dense(observed)
    out = {}
    for label, corrected in (("corrected", True), ("naive", False)):
        joined = JoinedCalibration(patches, order_correction=corrected)
        mitigated = joined.mitigate_sparse(dist).clip_normalized()
        out[label] = one_norm_distance(
            {int(i): float(v) for i, v in zip(mitigated.indices, mitigated.values)},
            ghz_ideal(5),
        )
    return out


def test_bench_ablation_order_correction(benchmark, emit):
    result = run_once(benchmark, order_correction_ablation)
    emit(
        "ablation_order_correction",
        format_table({"GHZ-5 error": result}, ["corrected", "naive"], row_header=""),
    )
    assert result["corrected"] < result["naive"]
    assert result["corrected"] < 0.1  # near-exact inversion


# ----------------------------------------------------------------------
# Ablation 2: Algorithm-1 separation k
# ----------------------------------------------------------------------
def separation_ablation():
    rows = {}
    cmap = grid(12)
    for k in (0, 1, 2):
        sched = build_patch_rounds(cmap, k=k)
        backend = SimulatedBackend(
            cmap,
            NoiseModel.measurement_only(
                MeasurementErrorChannel.from_readout_errors(
                    [ReadoutError(0.02, 0.05)] * 12
                )
            ),
            rng=22 + k,
        )
        err = run_cmc(backend, 16000, k=k)
        rows[f"k={k}"] = {
            "rounds": sched.num_rounds,
            "circuits": sched.num_circuits,
            "GHZ-12 error": err,
        }
    return rows


def test_bench_ablation_separation(benchmark, emit):
    rows = run_once(benchmark, separation_ablation)
    emit(
        "ablation_separation",
        format_table(rows, ["rounds", "circuits", "GHZ-12 error"], row_header="k"),
    )
    # fewer rounds (smaller k) -> fewer circuits -> more shots per circuit
    assert rows["k=0"]["circuits"] <= rows["k=1"]["circuits"] <= rows["k=2"]["circuits"]
    # all settings should still mitigate decently
    for cells in rows.values():
        assert cells["GHZ-12 error"] < 1.0


# ----------------------------------------------------------------------
# Ablation 3: calibration/target budget split
# ----------------------------------------------------------------------
def fraction_ablation():
    rows = {}
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
        backend = chain_backend(n=5, seed=33)
        err = run_cmc(backend, 16000, fraction=fraction)
        rows[f"{fraction:.0%} calibration"] = {"GHZ-5 error": err}
    return rows


def test_bench_ablation_calibration_fraction(benchmark, emit):
    rows = run_once(benchmark, fraction_ablation)
    emit(
        "ablation_calibration_fraction",
        format_table(rows, ["GHZ-5 error"], row_header="budget split"),
    )
    errs = [cells["GHZ-5 error"] for cells in rows.values()]
    # the middle splits should not be worse than the extremes combined —
    # i.e. the curve is not monotone in either direction (a real trade-off)
    assert min(errs[1:4]) <= min(errs[0], errs[4]) + 0.05


# ----------------------------------------------------------------------
# Ablation 4: patch size (edges vs 3-qubit paths)
# ----------------------------------------------------------------------
def patch_size_ablation():
    cmap = linear(5)
    ch = MeasurementErrorChannel(5)
    for q in range(5):
        ch.add_readout(q, ReadoutError(0.02, 0.05))
    ch.add_local((0, 1, 2), correlated_triplet_channel(0.08))
    ch.add_local((2, 3, 4), correlated_triplet_channel(0.08))
    rows = {}
    for label, patches in (
        ("edges (base CMC)", None),
        ("3-qubit paths", path_patches(cmap, 2)),
    ):
        backend = SimulatedBackend(cmap, NoiseModel.measurement_only(ch), rng=44)
        err = run_cmc(backend, 32000, edges=patches)
        sched = build_patch_rounds(cmap, k=1, edges=patches or cmap.edges)
        rows[label] = {"circuits": sched.num_circuits, "GHZ-5 error": err}
    return rows


def test_bench_ablation_patch_size(benchmark, emit):
    rows = run_once(benchmark, patch_size_ablation)
    emit(
        "ablation_patch_size",
        format_table(rows, ["circuits", "GHZ-5 error"], row_header="patch set"),
    )
    assert (
        rows["3-qubit paths"]["GHZ-5 error"]
        < rows["edges (base CMC)"]["GHZ-5 error"]
    )
