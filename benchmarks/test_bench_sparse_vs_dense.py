"""§VII-A — sparse calibration chains vs dense calibration matrices.

The scalability claim: "In the regime of a 50+ qubit system, applying a
series of sparse matrix-vector products is much more performant than a
2^n x 2^n dense full calibration matrix."  These are genuine multi-round
micro-benchmarks of the two code paths, plus the memory model from the
paper's 32 GB worked example.
"""

import numpy as np
import pytest

from repro.core.sparse_apply import apply_chain_sparse
from repro.counts import SparseDistribution
from repro.utils.rng import ensure_rng


def make_chain(num_qubits, rng):
    """Inverted-patch chain along a line: one 4x4 factor per edge."""
    chain = []
    for a in range(num_qubits - 1):
        m = np.eye(4) + rng.random((4, 4)) * 0.05
        chain.append((np.linalg.inv(m / m.sum(axis=0)), (a, a + 1)))
    return chain


def make_sparse_counts(num_qubits, support, rng):
    idx = rng.choice(1 << min(num_qubits, 62), size=support, replace=False)
    vals = rng.random(support)
    return SparseDistribution(idx, vals / vals.sum(), num_qubits)


@pytest.mark.parametrize("num_qubits", [10, 16, 24])
def test_bench_sparse_chain(benchmark, num_qubits):
    """Sparse chain cost scales with support * edges, NOT with 2^n."""
    rng = ensure_rng(7)
    chain = make_chain(num_qubits, rng)
    dist = make_sparse_counts(num_qubits, support=1000, rng=rng)
    out = benchmark(
        lambda: apply_chain_sparse(dist, chain, prune_tol=1e-9, max_support=50000)
    )
    assert out.nnz > 0


@pytest.mark.parametrize("num_qubits", [10, 12])
def test_bench_dense_matvec(benchmark, num_qubits):
    """Dense full-calibration matvec: 4^n memory/time — the anti-pattern."""
    rng = ensure_rng(8)
    dim = 1 << num_qubits
    dense = np.eye(dim) + rng.random((dim, dim)) * (0.05 / dim)
    vec = rng.random(dim)
    vec /= vec.sum()
    out = benchmark(lambda: dense @ vec)
    assert out.shape == (dim,)


def test_bench_sparse_40_qubits(benchmark):
    """The regime the paper argues for: 40+ qubits, where a dense matrix
    could not even be allocated (2^40 squared), the sparse chain runs in
    milliseconds on a shot-sized support."""
    rng = ensure_rng(9)
    chain = make_chain(40, rng)
    dist = make_sparse_counts(40, support=4000, rng=rng)
    out = benchmark(
        lambda: apply_chain_sparse(dist, chain, prune_tol=1e-9, max_support=100000)
    )
    assert out.nnz > 0


class TestMemoryModel:
    """The §VII-A worked example, as arithmetic."""

    def test_dense_14_qubit_matrix_is_1gb_per_4bytes(self):
        # Paper: n = 14 dense calibration matrix at float32 = 32 GiB...
        # (2^14)^2 * 4 bytes = 1 GiB; the paper's 32 GB figure corresponds
        # to holding the matrix plus its inverse workspace at float64 with
        # pivoting copies — either way it explodes quadratically:
        n = 14
        bytes_f32 = (1 << n) ** 2 * 4
        assert bytes_f32 == 1 << 30

    def test_sparse_coo_32_qubits_fits(self):
        # COO entries: (row, col, value) = 20 bytes; per CMC edge patch we
        # store a 4x4 = 16 entries; a 32-qubit device with ~64 edges is KB.
        edges = 64
        coo_bytes = edges * 16 * 20
        assert coo_bytes < (1 << 20)

    def test_support_bounded_by_shots(self):
        """'The maximum number of entries in the measurement vector is
        bounded by the number of shots.'"""
        rng = ensure_rng(10)
        dist = make_sparse_counts(50, support=16000, rng=rng)
        assert dist.nnz <= 16000
