"""Table I made concrete: run the characterisation methods on one device.

Each Table I row trades circuit count against information.  This bench runs
RB, state tomography, Linear calibration and CMC calibration against the
same noisy 2-qubit device and reports (a) circuits executed and (b) what
each method could/could not see — the claims of §III:

* RB's decay captures *gate* error; its SPAM estimate is a single scalar
  ("not as useful for implementing error mitigation strategies");
* tomography sees everything but needs 3^n settings;
* Linear calibration sees per-qubit readout bias but not correlations;
* CMC sees edge-local correlations at 4-circuits-per-round cost.
"""

import numpy as np
import pytest

from repro.backends import ShotBudget, SimulatedBackend
from repro.characterization import randomized_benchmarking, state_tomography
from repro.characterization.tomography import ideal_statevector, state_fidelity
from repro.circuits import Circuit
from repro.core import CalibrationMatrix, CMCMitigator
from repro.experiments.report import format_table
from repro.mitigation import LinearCalibrationMitigator
from repro.noise import (
    MeasurementErrorChannel,
    NoiseModel,
    ReadoutError,
    correlated_pair_channel,
)
from repro.topology import linear

from .conftest import run_once


def make_device(seed=0):
    """2-qubit device: gate noise + biased readout + correlated pair."""
    ch = MeasurementErrorChannel(2)
    ch.add_readout(0, ReadoutError(0.02, 0.06))
    ch.add_readout(1, ReadoutError(0.01, 0.05))
    ch.add_local((0, 1), correlated_pair_channel(0.08))
    model = NoiseModel(
        num_qubits=2, error_1q=0.005, measurement_channel=ch, name="t1-bench"
    )
    return SimulatedBackend(linear(2), model, rng=seed, max_trajectories=64)


def characterize_all():
    rows = {}
    # Randomised benchmarking
    backend = make_device(seed=1)
    budget = ShotBudget()
    rb = randomized_benchmarking(
        backend,
        depths=(1, 4, 8, 16, 32),
        sequences_per_depth=6,
        shots_per_sequence=512,
        budget=budget,
        rng=2,
    )
    rows["Randomised Benchmarking"] = {
        "circuits": budget.circuits_executed,
        "finding": (
            f"avg gate error {rb.average_gate_error:.4f}, "
            f"SPAM {rb.spam_error:.3f} (structureless)"
        ),
    }
    # State tomography of a Bell state
    backend = make_device(seed=3)
    budget = ShotBudget()
    prep = Circuit(2, name="bell").h(0).cx(0, 1)
    tomo = state_tomography(backend, prep, shots_per_setting=2048, budget=budget)
    fid = state_fidelity(tomo.rho, ideal_statevector(prep))
    rows["State Tomography"] = {
        "circuits": budget.circuits_executed,
        "finding": f"Bell fidelity {fid:.3f} (full state, 3^n settings)",
    }
    # Linear calibration
    backend = make_device(seed=4)
    budget = ShotBudget(40000)
    lin = LinearCalibrationMitigator()
    lin.prepare(backend, budget)
    truth = backend.noise_model.measurement_channel
    pair_truth = CalibrationMatrix.exact_from_channel(truth, (0, 1))
    lin_model = lin.factors[0].tensor(lin.factors[1])
    rows["Linear Calibration"] = {
        "circuits": budget.circuits_executed,
        "finding": (
            f"misses correlation: ||C_lin - C_true||_F = "
            f"{lin_model.distance_from(pair_truth):.3f}"
        ),
    }
    # CMC calibration
    backend = make_device(seed=5)
    budget = ShotBudget(40000)
    cmc = CMCMitigator(backend.coupling_map)
    cmc.prepare(backend, budget)
    cmc_cal = cmc.patch_calibrations[(0, 1)]
    rows["CMC"] = {
        "circuits": budget.circuits_executed,
        "finding": (
            f"captures correlation: ||C_cmc - C_true||_F = "
            f"{cmc_cal.distance_from(pair_truth):.3f}"
        ),
    }
    return rows, lin_model.distance_from(pair_truth), cmc_cal.distance_from(pair_truth)


def test_bench_characterization_landscape(benchmark, emit):
    rows, lin_dist, cmc_dist = run_once(benchmark, characterize_all)
    emit(
        "characterization_landscape",
        format_table(rows, ["circuits", "finding"], row_header="method", precision=0),
    )
    # The Table I story: CMC's calibration matrix is closer to the true
    # correlated channel than the tensored model, at comparable cost.
    assert cmc_dist < lin_dist


class TestLandscape:
    @pytest.fixture(scope="class")
    def data(self):
        return characterize_all()

    def test_tomography_most_expensive_per_qubit(self, data):
        rows, _, _ = data
        assert rows["State Tomography"]["circuits"] == 9  # 3^2

    def test_rb_polynomial_cost(self, data):
        rows, _, _ = data
        assert rows["Randomised Benchmarking"]["circuits"] == 30  # depths x seqs

    def test_linear_two_circuits(self, data):
        rows, _, _ = data
        assert rows["Linear Calibration"]["circuits"] == 2

    def test_cmc_four_circuits_single_edge(self, data):
        rows, _, _ = data
        assert rows["CMC"]["circuits"] == 4
