"""§VI-B octagonal-topology numbers (reported in text, not a figure).

"At 16 qubits, JIGSAW achieves a 23% reduction over the baseline error
rate, while CMC reduces the error rate by 37%.  For the same octagonal
device, AIM and SIM are within 1% of the initial error rate."
"""

import pytest

from repro.experiments import format_series, ghz_architecture_sweep

from .conftest import run_once

QUBITS = [8, 12, 16]
METHODS = ["Bare", "AIM", "SIM", "JIGSAW", "CMC", "CMC-ERR"]

_CACHE = {}


def full_sweep():
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = ghz_architecture_sweep(
            "octagonal",
            QUBITS,
            shots=16000,
            trials=3,
            methods=METHODS,
            seed=1601,
            gate_noise=False,
        )
    return _CACHE["sweep"]


@pytest.fixture(scope="module")
def sweep():
    return full_sweep()


def test_bench_octagonal(benchmark, emit):
    result = run_once(benchmark, full_sweep)
    emit(
        "octagonal",
        format_series(
            "n", result.qubit_counts, {m: result.medians(m) for m in result.methods()}
        ),
    )
    idx = result.qubit_counts.index(16)
    cmc_red = result.reduction_vs_bare("CMC")[idx]
    assert cmc_red is not None and cmc_red > 0.2


class TestOctagonalShape:
    def test_cmc_reduction_exceeds_jigsaw(self, sweep):
        """Paper at 16q: CMC -37% vs JIGSAW -23%."""
        idx = sweep.qubit_counts.index(16)
        cmc = sweep.reduction_vs_bare("CMC")[idx]
        jig = sweep.reduction_vs_bare("JIGSAW")[idx]
        assert cmc > jig

    def test_averaging_within_percent_of_bare(self, sweep):
        """'AIM and SIM are within 1% of the initial error rate' — we allow
        a few points of slack for our smaller trial count."""
        idx = sweep.qubit_counts.index(16)
        for method in ("AIM", "SIM"):
            red = sweep.reduction_vs_bare(method)[idx]
            assert abs(red) < 0.08

    def test_jigsaw_reduction_positive(self, sweep):
        idx = sweep.qubit_counts.index(16)
        assert sweep.reduction_vs_bare("JIGSAW")[idx] > 0.05
