"""§V-A — shots required for a consistent result, per method.

Sweeps the per-method total budget at a fixed GHZ-6 grid benchmark.
Expected: cheap-calibration methods (Linear, CMC) reach their error floor
with small budgets; Full needs budget to amortise its 2^n calibration
circuits (worse than CMC when starved, best when rich); Bare's error is
budget-independent beyond sampling noise.
"""

import pytest

from repro.experiments import format_series, shots_scaling_experiment

from .conftest import run_once

BUDGETS = [1000, 4000, 16000, 64000]
METHODS = ["Bare", "Full", "Linear", "JIGSAW", "CMC"]

_CACHE = {}


def full_experiment():
    if "res" not in _CACHE:
        _CACHE["res"] = shots_scaling_experiment(
            6, BUDGETS, methods=METHODS, trials=2, seed=81
        )
    return _CACHE["res"]


@pytest.fixture(scope="module")
def result():
    return full_experiment()


def test_bench_shots_scaling(benchmark, emit):
    res = run_once(benchmark, full_experiment)
    emit(
        "shots_scaling",
        format_series(
            "budget", res.budgets, {m: res.medians(m) for m in res.methods()}
        ),
    )
    # Full improves substantially with budget.
    full = res.medians("Full")
    assert full[-1] < full[0]


class TestShotsScaling:
    def test_cmc_converges_early(self, result):
        """CMC at 16000 shots is already within ~25% of its 64000-shot
        error — cheap calibration saturates fast."""
        cmc = result.medians("CMC")
        assert cmc[2] <= cmc[3] * 1.6 + 0.05

    def test_full_starved_vs_rich(self, result):
        full = result.medians("Full")
        assert full[0] > 2 * full[-1]  # starved Full is far worse

    def test_cmc_beats_full_when_starved(self, result):
        idx = result.budgets.index(1000)
        assert result.medians("CMC")[idx] < result.medians("Full")[idx]

    def test_bare_flat(self, result):
        bare = result.medians("Bare")
        assert abs(bare[0] - bare[-1]) < 0.15

    def test_budget_to_reach(self, result):
        bare_floor = min(b for b in result.medians("Bare") if b is not None)
        budget = result.budget_to_reach("CMC", bare_floor * 0.7)
        assert budget is not None  # CMC reaches 30% below bare somewhere
        assert result.budget_to_reach("Bare", 0.0) is None
