"""Service load proof (ISSUE 7): sustained load, fan-out, latency, admission.

Four operational claims of the hardened multi-tenant service, measured
against a live in-process :class:`~repro.service.server.SweepServer`
(real TCP, real protocol frames):

* **sustained submissions** — a burst of ~30 distinct sweeps admits at a
  sustained rate and every one of them completes, with zero request
  errors;
* **watcher fan-out** — 120 concurrent watch subscriptions on one sweep
  each receive every journal row exactly once (the bounded write-buffer
  policy never silently drops a row from a healthy consumer);
* **request latency** — p50/p99 over ~200 ``status`` round-trips stay
  under the gate (the admission/backpressure machinery must not tax the
  hot path);
* **admission thresholds** — an over-quota tenant and a saturated
  backlog are refused *structurally* (``kind`` + ``retry_after``), while
  other tenants' submissions proceed on the same server.

The CI load-smoke job gates on "no request errors and p99 under
threshold"; the latency caps are strict only under ``run_bench.py``
(``REPRO_BENCH_STRICT=1``) so noisy shared runners never gate merges.
Machine-readable blobs route to ``BENCH_load.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec
from repro.service import SweepServer, TenantQuota
from repro.service.client import ServiceError, SweepClient
from repro.store import ArtifactStore, MemoryBackend, reset_memory_spaces

from .conftest import RESULTS_DIR, run_once

SEED = 47
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: p99 status round-trip gate (seconds): the CI smoke's red line
P99_CAP = 0.25 if STRICT else 5.0

SUBMISSIONS = 30
WATCHERS = 120
STATUS_REQUESTS = 200


def _tiny_spec(seed: int) -> SweepSpec:
    """One-task sweep: submission/admission overhead dominates, which is
    exactly what a load test of the *service* should measure."""
    return SweepSpec(
        backends=(BackendSpec(kind="device", name="quito", gate_noise=False),),
        circuits=(CircuitSpec(root=0),),
        shots=(200,),
        methods=("Bare",),
        trials=1,
        seed=seed,
        full_max_qubits=5,
    )


def _fanout_spec() -> SweepSpec:
    return SweepSpec(
        backends=(
            BackendSpec(kind="device", name="quito", gate_noise=False),
            BackendSpec(kind="device", name="lima", gate_noise=False),
        ),
        circuits=(CircuitSpec(root=0),),
        shots=(200,),
        methods=("Bare",),
        trials=6,
        seed=SEED,
        full_max_qubits=5,
    )


def _store(space: str) -> ArtifactStore:
    reset_memory_spaces(space)
    return ArtifactStore(MemoryBackend(space))


def _percentile(sorted_vals, q: float) -> float:
    return sorted_vals[min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1)))]


def _blob(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {"name": name, "artifact": "BENCH_load.json", "strict": STRICT}
    record.update(payload)
    (RESULTS_DIR / f"{name}.bench.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )


# ----------------------------------------------------------------------
def test_bench_load_sustained_submissions(benchmark, emit):
    """~30 distinct sweeps submitted back-to-back: sustained admission
    rate, and every sweep runs to completion with zero request errors."""

    def burst():
        async def body():
            server = await SweepServer(
                _store("bench-load-submit"), port=0, workers=2
            ).start()
            errors = 0
            try:
                async with SweepClient(port=server.port, timeout=60.0) as c:
                    t0 = time.perf_counter()
                    ids = []
                    for i in range(SUBMISSIONS):
                        try:
                            ids.append(await c.submit(_tiny_spec(1000 + i)))
                        except (ServiceError, OSError):
                            errors += 1
                    submit_wall = time.perf_counter() - t0
                    for sweep_id in ids:
                        await c.results(sweep_id)
                    drain_wall = time.perf_counter() - t0
            finally:
                await server.close()
            return len(ids), errors, submit_wall, drain_wall

        return asyncio.run(body())

    admitted, errors, submit_wall, drain_wall = run_once(benchmark, burst)

    assert errors == 0, f"{errors} submission(s) errored under load"
    assert admitted == SUBMISSIONS
    rate = admitted / submit_wall if submit_wall > 0 else float("inf")

    _blob(
        "load_sustained_submissions",
        {
            "workload": {"submissions": SUBMISSIONS, "tasks_per_sweep": 1},
            "submissions_per_s": rate,
            "submit_wall_s": submit_wall,
            "drain_wall_s": drain_wall,
            "request_errors": errors,
        },
    )
    emit(
        "load_sustained_submissions",
        (
            f"{admitted} sweeps admitted in {submit_wall:.2f}s "
            f"({rate:.0f} submissions/s)\n"
            f"all complete after {drain_wall:.2f}s; request errors: {errors}"
        ),
    )


def test_bench_load_watch_fanout(benchmark, emit):
    """120 concurrent watchers on one sweep: every watcher sees every
    journal row exactly once, and nobody is silently dropped."""
    spec = _fanout_spec()

    def fanout():
        async def body():
            server = await SweepServer(
                _store("bench-load-fanout"), port=0, workers=2
            ).start()
            errors = 0
            try:
                async with SweepClient(port=server.port, timeout=60.0) as ctl:
                    sweep_id = await ctl.submit(spec)

                    async def one_watcher():
                        nonlocal errors
                        rows = []
                        try:
                            async with SweepClient(
                                port=server.port, timeout=60.0
                            ) as c:
                                async for row in c.watch(sweep_id):
                                    rows.append(
                                        (row["point"], tuple(row["trials"]))
                                    )
                        except (ServiceError, OSError):
                            errors += 1
                        return rows

                    t0 = time.perf_counter()
                    streams = await asyncio.gather(
                        *(one_watcher() for _ in range(WATCHERS))
                    )
                    wall = time.perf_counter() - t0
            finally:
                await server.close()
            return streams, errors, wall

        return asyncio.run(body())

    streams, errors, wall = run_once(benchmark, fanout)

    assert errors == 0, f"{errors} watcher(s) errored under fan-out"
    assert len(streams) == WATCHERS
    for rows in streams:
        assert len(rows) == spec.num_tasks, (
            f"a watcher saw {len(rows)}/{spec.num_tasks} rows"
        )
        assert len(set(rows)) == spec.num_tasks  # exactly once, no dups
    delivered = WATCHERS * spec.num_tasks

    _blob(
        "load_watch_fanout",
        {
            "workload": {"watchers": WATCHERS, "rows": spec.num_tasks},
            "rows_delivered": delivered,
            "rows_per_s": delivered / wall if wall > 0 else float("inf"),
            "wall_s": wall,
            "request_errors": errors,
        },
    )
    emit(
        "load_watch_fanout",
        (
            f"{WATCHERS} watchers x {spec.num_tasks} rows = {delivered} "
            f"deliveries in {wall:.2f}s, each stream exactly-once\n"
            f"request errors: {errors}"
        ),
    )


def test_bench_load_status_latency(benchmark, emit):
    """p50/p99 over ~200 status round-trips against a live server — the
    CI smoke's latency gate."""
    spec = _tiny_spec(SEED)

    def probe():
        async def body():
            server = await SweepServer(
                _store("bench-load-status"), port=0, workers=1
            ).start()
            latencies, errors = [], 0
            try:
                async with SweepClient(port=server.port, timeout=60.0) as c:
                    sweep_id = await c.submit(spec)
                    await c.results(sweep_id)  # a terminal job to query
                    for _ in range(STATUS_REQUESTS):
                        t0 = time.perf_counter()
                        try:
                            await c.status(sweep_id)
                        except (ServiceError, OSError):
                            errors += 1
                        latencies.append(time.perf_counter() - t0)
            finally:
                await server.close()
            return latencies, errors

        return asyncio.run(body())

    latencies, errors = run_once(benchmark, probe)
    latencies.sort()
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    # --- the CI gate: no request errors, p99 under threshold -----------
    assert errors == 0, f"{errors} status request(s) errored"
    assert p99 <= P99_CAP, (
        f"status p99 {p99 * 1000:.1f}ms over the {P99_CAP * 1000:.0f}ms gate"
    )

    _blob(
        "load_status_latency",
        {
            "workload": {"requests": STATUS_REQUESTS},
            "p50_ms": p50 * 1000,
            "p99_ms": p99 * 1000,
            "p99_cap_ms": P99_CAP * 1000,
            "request_errors": errors,
        },
    )
    emit(
        "load_status_latency",
        (
            f"{STATUS_REQUESTS} status round-trips: "
            f"p50 {p50 * 1000:.2f}ms, p99 {p99 * 1000:.2f}ms "
            f"(gate {P99_CAP * 1000:.0f}ms)\n"
            f"request errors: {errors}"
        ),
    )


def test_bench_load_admission_thresholds(benchmark, emit):
    """Flood past the quota and the saturation cap: refusals must be
    structured (kind + retry_after) and scoped — the other tenant's
    submission proceeds on the same server."""

    def flood():
        async def body():
            server = await SweepServer(
                _store("bench-load-admission"),
                port=0,
                workers=0,  # a pure queue: backlog persists until cancel
                max_pending_tasks=8,
                tenant_quotas={"alice": TenantQuota(max_sweeps=2)},
            ).start()
            quota_refusals, saturated_refusals, hard_errors = [], [], 0
            try:
                async with SweepClient(port=server.port, timeout=60.0) as c:
                    admitted = []
                    # alice floods past her sweep quota
                    for i in range(5):
                        try:
                            admitted.append(
                                await c.submit(_tiny_spec(2000 + i), tenant="alice")
                            )
                        except ServiceError as exc:
                            if exc.kind == "quota":
                                quota_refusals.append(exc.retry_after)
                            else:
                                hard_errors += 1
                    # bob is untouched by alice's refusals
                    bob = await c.submit(_tiny_spec(2100), tenant="bob")
                    admitted.append(bob)
                    # the default tenant floods the global backlog cap
                    for i in range(8):
                        try:
                            admitted.append(await c.submit(_tiny_spec(2200 + i)))
                        except ServiceError as exc:
                            if exc.kind == "saturated":
                                saturated_refusals.append(exc.retry_after)
                            else:
                                hard_errors += 1
                    for sweep_id in admitted:
                        await c.cancel(sweep_id)
            finally:
                await server.close()
            return len(admitted), quota_refusals, saturated_refusals, hard_errors

        return asyncio.run(body())

    admitted, quota_refusals, saturated_refusals, hard_errors = run_once(
        benchmark, flood
    )

    assert hard_errors == 0, f"{hard_errors} refusal(s) were not structured"
    assert len(quota_refusals) == 3  # alice: 2 of 5 admitted
    assert all(ra is not None and ra > 0 for ra in quota_refusals)
    assert saturated_refusals, "the backlog cap never engaged"
    assert all(0.5 <= ra <= 60.0 for ra in saturated_refusals)

    _blob(
        "load_admission_thresholds",
        {
            "workload": {
                "alice_quota_sweeps": 2,
                "max_pending_tasks": 8,
            },
            "admitted": admitted,
            "quota_refusals": len(quota_refusals),
            "saturated_refusals": len(saturated_refusals),
            "unstructured_errors": hard_errors,
        },
    )
    emit(
        "load_admission_thresholds",
        (
            f"admitted {admitted}; quota refusals {len(quota_refusals)} "
            f"(retry_after set), saturated refusals "
            f"{len(saturated_refusals)} (retry_after within [0.5s, 60s])\n"
            f"unstructured errors: {hard_errors}; "
            f"bob proceeded while alice was throttled"
        ),
    )
