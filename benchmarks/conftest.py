"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure: it runs the experiment
driver under ``pytest-benchmark`` (one round — these are scientific
regenerators, not micro-benchmarks; the kernel benches in
``test_bench_sparse_vs_dense.py`` use proper multi-round timing), prints
the paper-style rows/series to the terminal, and writes them under
``benchmarks/results/`` so the artefacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Print a labelled result block to the live terminal and archive it."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return _emit


def run_once(benchmark, fn):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
