"""Batched trajectory engine benchmark: the ISSUE 2 acceptance workload.

GHZ-12, 128 trajectories, 16000 shots, single core — the exact shape of one
noisy circuit evaluation inside the Figs. 13-15 architecture sweeps — under:

1. the **pre-batch serial trajectory loop** (one dense-engine circuit
   evaluation per trajectory with per-gate validation, kept verbatim as
   ``TrajectorySimulator.serial_output_distribution``);
2. the **batched engine** (one gate application across the whole trajectory
   batch, Pauli insertions as slicing, lazy forking at first events).

Asserted invariants (the ISSUE's acceptance criteria):

* the batched engine is >= 5x faster than the serial loop on this workload;
* both engines agree on the physics: same GHZ-peak mass within Monte-Carlo
  tolerance, both distributions normalised;
* the batched result is deterministic per seed.

A machine-readable timing blob is written to
``benchmarks/results/batched_trajectories.bench.json`` for
``benchmarks/run_bench.py`` to fold into ``BENCH_trajectories.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.circuits.library import ghz_bfs
from repro.simulator import TrajectorySimulator
from repro.topology import linear

from .conftest import RESULTS_DIR, run_once

NUM_QUBITS = 12
MAX_TRAJECTORIES = 128
SHOTS = 16000
SEED = 7
REQUIRED_SPEEDUP = 5.0
# The acceptance floor is only *asserted* under run_bench.py (which sets
# this env var and runs in the non-blocking CI job).  The tier-1 suite also
# collects this file on shared runners whose wall clocks are noisy, so
# there it enforces a loose catastrophic-regression floor instead of the
# full 5x — perf does not gate merges (see .github/workflows/ci.yml).
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
RELAXED_SPEEDUP = 2.0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_batched_trajectories(benchmark, emit):
    qc = ghz_bfs(linear(NUM_QUBITS))
    sim = TrajectorySimulator(
        error_1q=0.001, error_2q=0.01, max_trajectories=MAX_TRAJECTORIES
    )
    # Warm both paths (prepared-operator/fingerprint caches, allocator).
    sim.output_distribution(qc, SHOTS, rng=0)
    sim.serial_output_distribution(qc, SHOTS, rng=0)

    batched_dist = run_once(
        benchmark, lambda: sim.output_distribution(qc, SHOTS, rng=SEED)
    )
    t_batched = _best_of(lambda: sim.output_distribution(qc, SHOTS, rng=SEED))
    t_serial = _best_of(
        lambda: sim.serial_output_distribution(qc, SHOTS, rng=SEED), repeats=1
    )
    serial_dist = sim.serial_output_distribution(qc, SHOTS, rng=SEED)
    speedup = t_serial / t_batched

    # --- acceptance: >= 5x over the pre-batch serial trajectory loop ------
    floor = REQUIRED_SPEEDUP if STRICT else RELAXED_SPEEDUP
    assert speedup >= floor, (
        f"batched engine ({t_batched * 1e3:.1f}ms) must be >= "
        f"{floor}x faster than the serial loop "
        f"({t_serial * 1e3:.1f}ms); got {speedup:.1f}x"
    )

    # --- same physics, deterministic --------------------------------------
    assert np.isclose(batched_dist.sum(), 1.0)
    assert np.isclose(serial_dist.sum(), 1.0)
    peak_batched = batched_dist[0] + batched_dist[-1]
    peak_serial = serial_dist[0] + serial_dist[-1]
    assert abs(peak_batched - peak_serial) < 0.05
    np.testing.assert_array_equal(
        batched_dist, sim.output_distribution(qc, SHOTS, rng=SEED)
    )

    record = {
        "name": "batched_trajectories_ghz12",
        "workload": {
            "circuit": f"ghz_bfs(linear({NUM_QUBITS}))",
            "max_trajectories": MAX_TRAJECTORIES,
            "shots": SHOTS,
            "seed": SEED,
        },
        "wall_time_s": t_batched,
        "baseline": "serial trajectory loop (pre-batch engine)",
        "baseline_wall_time_s": t_serial,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "batched_trajectories.bench.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    emit(
        "batched_trajectories",
        (
            f"GHZ-{NUM_QUBITS}, {MAX_TRAJECTORIES} trajectories, "
            f"{SHOTS} shots (single core)\n"
            f"serial trajectory loop : {t_serial * 1e3:8.1f} ms\n"
            f"batched engine         : {t_batched * 1e3:8.1f} ms "
            f"({speedup:.1f}x, acceptance floor {REQUIRED_SPEEDUP:.0f}x)\n"
            f"GHZ-peak mass          : serial {peak_serial:.4f} / "
            f"batched {peak_batched:.4f}"
        ),
    )


def test_bench_batched_channel_application(emit):
    """Secondary pin: run_batch's one-pass measurement-channel application
    must not be slower than circuit-by-circuit run() on a calibration-style
    batch (many same-register circuits, no gate noise)."""
    from repro.backends import SimulatedBackend
    from repro.circuits.circuit import Circuit
    from repro.noise import MeasurementErrorChannel, NoiseModel, ReadoutError

    n = 10
    errs = tuple(ReadoutError(0.02 + 0.001 * q, 0.05) for q in range(n))
    model = NoiseModel(
        n,
        measurement_channel=MeasurementErrorChannel.from_readout_errors(errs),
        readout_errors=errs,
    )
    circuits = []
    for k in range(24):
        qc = Circuit(n, name=f"cal-{k}")
        for q in range(n):
            if (k >> (q % 5)) & 1:
                qc.x(q)
        circuits.append(qc.measure_all())

    loop_backend = SimulatedBackend(linear(n), model, rng=5)
    t0 = time.perf_counter()
    loop_counts = [loop_backend.run(c, 1000) for c in circuits]
    t_loop = time.perf_counter() - t0

    batch_backend = SimulatedBackend(linear(n), model, rng=5)
    t0 = time.perf_counter()
    batch_counts = batch_backend.run_batch(circuits, 1000)
    t_batch = time.perf_counter() - t0

    # Identical draws either way (same distributions, same stream order).
    for a, b in zip(loop_counts, batch_counts):
        assert dict(a) == dict(b)
    # The batched route must not regress the loop.  (The win is modest here —
    # the channel is a small share of noiseless evaluation — but it must
    # never be a loss.)  Only enforced under run_bench.py; shared-runner
    # tier-1 wall clocks are too noisy to gate on a 1.5x ratio.
    if STRICT:
        assert t_batch <= t_loop * 1.5, (t_batch, t_loop)

    emit(
        "batched_channel_application",
        (
            f"24 calibration circuits on {n} qubits, 1000 shots each\n"
            f"circuit-by-circuit run() : {t_loop * 1e3:8.1f} ms\n"
            f"run_batch (one channel pass): {t_batch * 1e3:8.1f} ms"
        ),
    )
