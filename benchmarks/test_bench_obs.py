"""Telemetry overhead gate (ISSUE 9): observation must be nearly free.

Runs the same cold sweep workload with telemetry disabled and enabled,
interleaved best-of-N on each side, and gates the enabled/disabled
wall-time ratio: **< 5 %** overhead under ``REPRO_BENCH_STRICT=1`` (the
``run_bench.py`` entry point), a catastrophic-regression ceiling
otherwise (the tier-1 suite runs on noisy shared machines).

The records from every run — on or off — must be identical: the
overhead gate is only meaningful if telemetry observed the *same*
computation (the full byte-identity matrix is
``tests/test_obs_determinism.py``).

A machine-readable blob goes to
``benchmarks/results/obs_overhead.bench.json``; ``run_bench.py`` folds
it into ``BENCH_obs.json``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time

from repro import obs
from repro.pipeline import BackendSpec, CircuitSpec, SweepSpec, run_sweep
from repro.store import ArtifactStore, MemoryBackend, reset_memory_spaces

from .conftest import RESULTS_DIR, run_once

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
MAX_OVERHEAD = 0.05  # the ISSUE 9 gate: < 5% with every instrument live
RELAXED_OVERHEAD = 1.0  # catastrophic floor: never 2x the uninstrumented run
ROUNDS = 9

SPEC = SweepSpec(
    backends=(
        BackendSpec(kind="device", name="quito", gate_noise=False),
        BackendSpec(kind="device", name="lima", gate_noise=False),
    ),
    circuits=(CircuitSpec(root=0),),
    shots=(16000,),
    methods=("Bare", "CMC"),
    trials=10,
    seed=5,
    full_max_qubits=5,
)


def _cold_run(space: str):
    """One fully-cold sweep over a fresh in-memory store (journal writes,
    calibration measurement + persistence, cache misses — every
    instrumented hot path fires)."""
    reset_memory_spaces(space)
    try:
        return run_sweep(SPEC, store=ArtifactStore(MemoryBackend(space)))
    finally:
        reset_memory_spaces(space)


def _record_dicts(result):
    return [rec.to_dict() for rec in result.records]


def test_bench_obs_overhead(benchmark, emit):
    obs.disable()
    reference = run_once(benchmark, lambda: _cold_run("obs-bench-ref"))
    ref_records = _record_dicts(reference)

    # The true overhead here is sub-millisecond (a few hundred guarded
    # events per run) while shared-runner wall-clock jitter is +-10% and
    # one-sided — noise only ever adds time.  Two estimators, both
    # one-sided-noise-robust, gated on whichever is smaller: the median
    # of *paired* interleaved ratios (drift hits both sides of a pair
    # equally) and the ratio of minimum envelopes (each side's best
    # approach to its true runtime).  A real regression — say a per-shot
    # counter — inflates every enabled sample and therefore both.
    t_off = t_on = float("inf")
    ratios = []
    events = 0
    gc.disable()
    try:
        for i in range(ROUNDS):
            obs.disable()
            t0 = time.perf_counter()
            off = _cold_run(f"obs-bench-off{i}")
            dt_off = time.perf_counter() - t0
            t_off = min(t_off, dt_off)
            assert _record_dicts(off) == ref_records

            telemetry = obs.enable(obs.Telemetry())
            t0 = time.perf_counter()
            on = _cold_run(f"obs-bench-on{i}")
            dt_on = time.perf_counter() - t0
            t_on = min(t_on, dt_on)
            assert _record_dicts(on) == ref_records
            ratios.append(dt_on / dt_off)

            snap = telemetry.snapshot()
            # the instrumentation actually fired, on every tier
            assert snap["repro_journal_appends_total"]["series"][0]["value"] > 0
            assert snap["repro_backend_ops_total"]["series"]
            assert snap["repro_calcache_lookups_total"]["series"]
            events = int(
                sum(
                    s.get("value", s.get("count", 0))
                    for fam in snap.values()
                    for s in fam["series"]
                )
            )
    finally:
        gc.enable()
        obs.disable()

    overhead = min(statistics.median(ratios), t_on / t_off) - 1.0
    ceiling = MAX_OVERHEAD if STRICT else RELAXED_OVERHEAD
    assert overhead < ceiling, (
        f"telemetry overhead {overhead * 100:.1f}% exceeds "
        f"{ceiling * 100:.0f}% (off {t_off:.3f}s, on {t_on:.3f}s)"
    )

    blob = {
        "name": "obs_overhead",
        "artifact": "BENCH_obs.json",
        "workload": {
            "tasks": SPEC.num_tasks,
            "records": len(ref_records),
            "shots": SPEC.shots[0],
            "rounds": ROUNDS,
        },
        "wall_time_s": {"disabled": t_off, "enabled": t_on},
        "paired_ratios": ratios,
        "overhead_fraction": overhead,
        "observed_samples": events,
        "records_bit_identical": True,
        "strict": STRICT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.bench.json").write_text(
        json.dumps(blob, indent=2) + "\n"
    )
    emit(
        "obs_overhead",
        (
            f"telemetry disabled: {t_off:.3f}s   enabled: {t_on:.3f}s   "
            f"overhead: {overhead * 100:+.1f}% (gate < {ceiling * 100:.0f}%)\n"
            f"{events} samples across "
            f"{len(SPEC.backends)}x{len(SPEC.methods)}x{SPEC.trials} tasks; "
            f"records identical on vs off"
        ),
    )
