"""Table III — edge count as a function of qubit count per architecture.

Regenerates the closed-form table, cross-checks the formulas against the
actual generators, and verifies the §VII-B scaling argument: every family
except fully-connected grows its edge count linearly, so bare CMC is
scalable everywhere but IonQ-style all-to-all devices.
"""

import pytest

from repro.experiments.report import format_table
from repro.topology import edge_count_formula
from repro.topology.edge_counts import is_linear_scaling, measured_edge_count

from .conftest import run_once

SIZES = [8, 16, 24, 32, 64]
FAMILIES = ["linear", "grid", "local_grid", "heavy_hex", "octagonal", "fully_connected"]


def build_table():
    rows = {}
    for family in FAMILIES:
        cells = {}
        for n in SIZES:
            try:
                cells[f"n={n}"] = edge_count_formula(family, n)
            except ValueError:
                cells[f"n={n}"] = measured_edge_count(family, n)
        cells["scaling"] = "linear" if is_linear_scaling(family) else "quadratic"
        rows[family] = cells
    return rows


def test_bench_table3_edge_counts(benchmark, emit):
    rows = run_once(benchmark, build_table)
    emit(
        "table3_edges",
        format_table(
            rows, [f"n={n}" for n in SIZES] + ["scaling"], row_header="architecture",
            precision=0,
        ),
    )
    assert rows["fully_connected"]["n=64"] == 64 * 63 // 2
    assert rows["linear"]["n=64"] == 63


class TestTable3:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_formula_matches_generator_where_tiling(self, family):
        for n in (16, 64):
            try:
                formula = edge_count_formula(family, n)
            except ValueError:
                continue
            assert formula == measured_edge_count(family, n)

    @pytest.mark.parametrize("family", [f for f in FAMILIES if f != "fully_connected"])
    def test_linear_families_bounded_by_constant_times_n(self, family):
        for n in (32, 64, 128):
            assert measured_edge_count(family, n) <= 4 * n

    def test_fully_connected_quadratic(self):
        e32 = measured_edge_count("fully_connected", 32)
        e64 = measured_edge_count("fully_connected", 64)
        assert e64 / e32 > 3.5  # ~4x for doubling n
