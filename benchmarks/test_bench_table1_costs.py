"""Table I — characterisation cost (circuit executions) per method.

Regenerates the cost table from the closed forms, plus the §IV-A Tokyo
worked example where the *measured* Algorithm-1 output replaces the
symbolic ``(4/k)e`` term: individual qubits 40, per-edge ~140, coupling-map
patching in the tens, all pairs 760, full calibration 2^20.
"""

import pytest

from repro.core.costs import (
    METHOD_COSTS,
    characterization_cost,
    measured_cmc_cost,
    tokyo_worked_example,
)
from repro.experiments.report import format_table
from repro.topology import ibm_tokyo, random_coupling_map

from .conftest import run_once


def build_table():
    n, r = 16, 1
    e = 2 * n
    rows = {}
    for key, cost in METHOD_COSTS.items():
        rows[cost.method] = {
            "formula": cost.formula,
            "circuits @ n=16": characterization_cost(key, n=n, r=r, e=e, k=3.0),
            "output": cost.output,
        }
    return rows


def test_bench_table1_costs(benchmark, emit):
    rows = run_once(benchmark, build_table)
    emit(
        "table1_costs",
        format_table(
            rows, ["formula", "circuits @ n=16", "output"], row_header="method",
            precision=0,
        ),
    )
    # Scaling sanity: tomography > full > everything polynomial.
    assert rows["Process Tomography"]["circuits @ n=16"] > rows[
        "Complete Calibration"
    ]["circuits @ n=16"]
    assert rows["CMC"]["circuits @ n=16"] < rows["Complete Calibration"][
        "circuits @ n=16"
    ]


def test_bench_table1_tokyo_example(benchmark, emit):
    counts = run_once(benchmark, lambda: tokyo_worked_example(ibm_tokyo()))
    emit(
        "table1_tokyo",
        format_table({"ibm_tokyo": counts}, list(counts.keys()), row_header="device", precision=0),
    )
    assert counts["individual_qubits"] == 40
    # paper: 140 circuits for per-edge (35 edges); our Tokyo has 43 edges.
    assert 120 <= counts["per_edge"] <= 200
    assert counts["coupling_map_patching"] < counts["per_edge"]
    assert counts["all_pairs"] == 760
    assert counts["full_calibration"] == 2**20


class TestCostFormulas:
    def test_exponential_methods(self):
        assert characterization_cost("process_tomography", 4) == 256
        assert characterization_cost("complete_calibration", 4) == 16

    def test_polynomial_methods(self):
        assert characterization_cost("tensored_calibration", 8) == 16
        assert characterization_cost("aim", 8, r=10) == 40
        assert characterization_cost("jigsaw", 8, aim_k=4) == 20

    def test_cmc_cost_uses_edges_and_speedup(self):
        assert characterization_cost("cmc", 8, e=12, k=3.0) == pytest.approx(16)

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            characterization_cost("astrology", 4)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            characterization_cost("aim", 0)

    def test_measured_cmc_matches_schedule(self):
        cmap = random_coupling_map(30, avg_degree=3, seed=5)
        from repro.core import build_patch_rounds

        assert measured_cmc_cost(cmap) == build_patch_rounds(cmap).num_circuits

    def test_paper_reduction_factor_on_random_maps(self):
        """§IV-A: on >100-qubit random maps with avg degree 4, patching
        cuts circuits by 3-10x vs per-edge."""
        cmap = random_coupling_map(120, avg_degree=4.0, seed=1)
        per_edge = 4 * cmap.num_edges
        patched = measured_cmc_cost(cmap, k=1)
        assert 2.0 <= per_edge / patched <= 20.0
