#!/usr/bin/env python
"""Benchmark entry point: run the ``test_bench_*`` suite, emit JSON.

Runs the benchmark tests under pytest (the perf-pinning ones by default,
``--all`` for the full paper-regeneration suite), collects every
machine-readable ``*.bench.json`` blob the benchmarks write under
``benchmarks/results/``, and folds them — wall-time per benchmark plus
speedup vs the naive serial baseline — into ``BENCH_*.json`` artefacts.
A record routes itself with its optional ``artifact`` field (e.g. the
store benchmark emits into ``BENCH_store.json``); records without one
land in the default ``BENCH_trajectories.json``.  CI runs this as a
non-blocking job so the repo accumulates a perf trajectory over time;
locally:

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --all --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_trajectories.json"

# Perf-pinning benchmarks: fast, assert speedup floors, write *.bench.json.
PERF_BENCHES = [
    "test_bench_batched_trajectories.py",
    "test_bench_store.py",
    "test_bench_service.py",
    "test_bench_fleet.py",
    "test_bench_load.py",
    "test_bench_calgraph.py",
    "test_bench_obs.py",
    "test_bench_payload.py",
]

# The BENCH_*.json artefact each registered bench must emit into.  A bench
# whose records never arrive (wrong blob name, forgotten write, silently
# skipped test) fails the run instead of silently thinning the artefact
# set — the exact failure mode that once shipped a PERF_BENCHES entry with
# no committed BENCH_calgraph.json.
EXPECTED_ARTIFACTS = {
    "test_bench_batched_trajectories.py": "BENCH_trajectories.json",
    "test_bench_store.py": "BENCH_store.json",
    "test_bench_service.py": "BENCH_service.json",
    "test_bench_fleet.py": "BENCH_fleet.json",
    "test_bench_load.py": "BENCH_load.json",
    "test_bench_calgraph.py": "BENCH_calgraph.json",
    "test_bench_obs.py": "BENCH_obs.json",
    "test_bench_payload.py": "BENCH_payload.json",
}


def run_pytest(selection: list[str]) -> tuple[int, float]:
    """Run the selected benchmark files; returns (exit code, wall time)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Under this entry point the wall-clock acceptance floors are enforced
    # (the tier-1 suite relaxes them — see test_bench_batched_trajectories).
    env["REPRO_BENCH_STRICT"] = "1"
    cmd = [sys.executable, "-m", "pytest", "-q", *selection]
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    return proc.returncode, time.perf_counter() - t0


def collect_records() -> list[dict]:
    records = []
    for path in sorted(RESULTS_DIR.glob("*.bench.json")):
        try:
            records.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            records.append({"name": path.stem, "error": str(exc)})
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--all",
        action="store_true",
        help="run the full benchmarks/ suite instead of the perf pins",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artefact (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--skip-run",
        action="store_true",
        help="only collect existing *.bench.json blobs (no pytest run)",
    )
    args = parser.parse_args(argv)

    if args.skip_run:
        code, wall = 0, 0.0
    else:
        # Drop stale blobs so the artefact only contains records produced by
        # this invocation (a previous --all run must not leak timings from a
        # different machine/commit into a perf-pins artefact).
        if RESULTS_DIR.is_dir():
            for stale in RESULTS_DIR.glob("*.bench.json"):
                stale.unlink()
        selection = (
            [str(BENCH_DIR)]
            if args.all
            else [str(BENCH_DIR / name) for name in PERF_BENCHES]
        )
        code, wall = run_pytest(selection)

    # Route records into per-subsystem BENCH_*.json artefacts: a record's
    # "artifact" field names its file; everything else goes to --output.
    default_name = args.output.name
    grouped: dict[str, list[dict]] = {default_name: []}
    for record in collect_records():
        grouped.setdefault(record.get("artifact", default_name), []).append(
            record
        )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    for name, records in grouped.items():
        artefact = {
            "suite": "benchmarks" if args.all else "perf-pins",
            "pytest_exit_code": code,
            "suite_wall_time_s": wall,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "benchmarks": records,
        }
        path = args.output if name == default_name else args.output.parent / name
        path.write_text(json.dumps(artefact, indent=2) + "\n")
        print(f"wrote {path} ({len(records)} benchmark record(s))")

    # Registry completeness: every bench this invocation ran must have
    # emitted records into its artefact (blobs routed to the default
    # artefact land under whatever --output named it).
    if not args.skip_run:
        ran = set(PERF_BENCHES) | (set(EXPECTED_ARTIFACTS) if args.all else set())
        missing = []
        for bench, artifact in sorted(EXPECTED_ARTIFACTS.items()):
            if bench not in ran:
                continue
            key = default_name if artifact == DEFAULT_OUTPUT.name else artifact
            if not grouped.get(key):
                missing.append(f"{bench} -> {artifact}")
        if missing:
            for item in missing:
                print(f"ERROR: registered benchmark emitted no records: {item}")
            return code or 1
    return code


if __name__ == "__main__":
    raise SystemExit(main())
